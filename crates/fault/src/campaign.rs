//! Monte-Carlo fault-injection campaigns.
//!
//! # Checkpoint acceleration
//!
//! A naive campaign re-executes every trial from instruction zero, even
//! though everything before a trial's first bit flip is bit-identical to
//! the golden run. With [`CampaignConfig::checkpointing`] (the default),
//! the campaign instead:
//!
//! 1. **Checkpoints the golden run**: while the fault-free reference
//!    executes, the campaign records up to 32 [`certa_sim::Snapshot`]s
//!    (count auto-tuned from [`CampaignConfig::checkpoint_budget_bytes`]),
//!    doubling the spacing whenever the budget would be exceeded, and
//!    remembers how many *eligible* writebacks each snapshot had seen.
//! 2. **Fast-forwards each trial**: a trial restores the latest checkpoint
//!    at or before its [`FaultPlan::earliest_injection`] point and seeds
//!    its [`Injector`] with the checkpoint's eligible-writeback count, so
//!    the skipped prefix — which carries no flips — is never re-executed.
//! 3. **Detects reconvergence adaptively**: probing is only meaningful
//!    once every planned flip has been applied, so after its last flip's
//!    checkpoint the trial runs *straight through* the intermediate
//!    checkpoints without pausing (pauses also force the simulator out of
//!    its superblock traces, so fewer pauses mean faster trial
//!    execution). The first probe lands at the first checkpoint past
//!    [`FaultPlan::latest_injection`]; if the states are bit-identical
//!    ([`Machine::state_eq`] — O(dirty pages) via copy-on-write page
//!    sharing and per-page hashes) the rest of the run *is* the golden
//!    run, and the golden outcome/output are spliced in without executing
//!    the suffix. A trial that has not reconverged backs off
//!    exponentially (probe gaps 1, 2, 4, … checkpoints): masked flips —
//!    the common case under protection — splice at the first probe, while
//!    persistently divergent trials stop paying per-checkpoint pauses.
//! 4. **Schedules for incremental restore**: worker threads
//!    ([`std::thread::scope`]) each own one reusable [`Machine`]. Trials
//!    are sorted by restore checkpoint and injection point, then handed
//!    out in contiguous *chunks*, so a worker's consecutive trials
//!    restore the very checkpoint the machine is already based on —
//!    O(pages the previous trial wrote) of pointer swaps — and the hops
//!    that remain (between chunk groups) recur across workers, keeping
//!    the bounded hop-union MRU cache hot. Restores never copy page
//!    bytes and never allocate: copy-on-write page sharing swaps page
//!    pointers and recycles displaced pages.
//! 5. **Decodes once**: the program is lowered to the simulator's micro-op
//!    form ([`certa_sim::DecodedProgram`]) a single time per campaign and
//!    shared by the golden run and every trial machine.
//!
//! **Determinism contract**: checkpointed trials are bit-identical —
//! outcome, output, instruction count, and injected count — to running the
//! same seed from scratch. Before the earliest flip a trial equals the
//! golden run, so restoring a golden checkpoint there is exact; after the
//! last flip, splicing only happens when the full architectural state
//! equals the golden state, which makes the suffix exact too. The
//! workspace property suite (`tests/property.rs`) verifies this
//! equivalence across random seeds and workload sizes.

use certa_core::TagMap;
use certa_isa::Program;
use certa_sim::{
    BoundedRun, DecodedProgram, Machine, MachineConfig, Outcome, Snapshot, SuperblockPolicy,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::injector::{EligibleCounter, ErrorModel, FaultPlan, Injector, Protection};

/// Hard cap on golden-run checkpoints, regardless of memory budget.
const MAX_CHECKPOINTS: usize = 32;

/// Something that can be fault-injected: a program plus the harness logic
/// that stages its input into guest memory and extracts its output.
///
/// Implemented by every workload in `certa-workloads`.
pub trait Target: Sync {
    /// The program to execute.
    fn program(&self) -> &Program;

    /// Stages input data into guest memory before a run.
    fn prepare(&self, machine: &mut Machine<'_>);

    /// Extracts the output bytes after a halted run. `None` means the
    /// output region was unreadable/malformed (treated as a completed run
    /// with zero-fidelity output by callers that care).
    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>>;

    /// Data memory size required (defaults to 4 MiB).
    fn mem_size(&self) -> u32 {
        4 << 20
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Bit flips injected per trial (the paper's "errors inserted").
    pub errors: u64,
    /// Protection regime.
    pub protection: Protection,
    /// Base seed; trial `t` uses a seed derived from `(seed, t)`.
    pub seed: u64,
    /// Watchdog budget as a multiple of the golden instruction count.
    pub watchdog_factor: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Value-corruption model (defaults to the paper's single bit flip).
    pub model: ErrorModel,
    /// Accelerate trials with golden-run checkpoints (see the module docs).
    /// Results are bit-identical either way; turning this off exists for
    /// benchmarking and for double-checking the determinism contract.
    pub checkpointing: bool,
    /// Memory budget for golden-run checkpoints in bytes. The checkpoint
    /// count is `budget / snapshot size`, clamped to `1..=32`.
    pub checkpoint_budget_bytes: usize,
    /// Initial checkpoint spacing in dynamic instructions. Spacing doubles
    /// (and existing checkpoints are thinned) whenever the count would
    /// exceed the budget, so any golden length ends up with a bounded,
    /// roughly even checkpoint set.
    pub checkpoint_stride: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            errors: 1,
            protection: Protection::On,
            seed: 0xCE27A,
            watchdog_factor: 10,
            threads: 0,
            model: ErrorModel::default(),
            checkpointing: true,
            checkpoint_budget_bytes: 256 << 20,
            checkpoint_stride: 1 << 16,
        }
    }
}

/// The fault-free reference run.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Output captured from the golden run.
    pub output: Vec<u8>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Size of the eligible-injection population under the campaign's
    /// protection regime.
    pub eligible_population: u64,
    /// Per-instruction execution counts (for Table 3 dynamic statistics).
    pub exec_counts: Vec<u64>,
}

/// One trial's result.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Output bytes, if the run halted and the output region was readable.
    pub output: Option<Vec<u8>>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Bit flips actually applied (≤ requested when the run dies early).
    pub injected: u32,
}

impl TrialResult {
    /// Whether this trial ended in one of the paper's catastrophic failures
    /// (crash or infinite run).
    #[must_use]
    pub fn is_catastrophic(&self) -> bool {
        self.outcome.is_catastrophic()
    }
}

/// How the campaign's trial restores broke down by path (see
/// [`certa_sim::Machine::restore`] /
/// [`certa_sim::Machine::restore_with_diff`]): the cheap dirty-page path,
/// the checkpoint-hopping page-diff path, and the full-image fallback.
/// All zero for campaigns that run without checkpointing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Same-checkpoint restores: only the pages the previous trial
    /// dirtied were copied.
    pub dirty_page: u64,
    /// Checkpoint-hopping restores through page-diff unions (dirty pages
    /// plus the pages differing along the hop, walked through aligned
    /// segment waypoints).
    pub diff_hop: u64,
    /// Hop segments whose page-diff union came from the bounded
    /// hop-union MRU cache instead of being re-unioned from adjacent
    /// diffs. Counted per segment, so a single long diff-hop restore can
    /// contribute several hits; aligned segment keys recur across
    /// workers, which is what keeps this nonzero at paper scale (gated
    /// in CI).
    pub diff_union_cache_hits: u64,
    /// Full-image `memcpy` fallbacks (hop too wide, or the machine's base
    /// was not a checkpoint of this set).
    pub full_image: u64,
}

impl RestoreStats {
    /// Total trial restores across all paths.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dirty_page + self.diff_hop + self.full_image
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The fault-free reference run.
    pub golden: GoldenRun,
    /// Per-trial results, in trial order.
    pub trials: Vec<TrialResult>,
    /// Restore-path breakdown of the checkpointed trial scheduler.
    pub restore_stats: RestoreStats,
    /// Bytes actually materialized capturing the golden checkpoints: under
    /// copy-on-write page sharing a capture copies only the pages written
    /// since the previous checkpoint, so this is far below
    /// `checkpoints × memory size`. Zero for campaigns run without
    /// checkpointing.
    pub checkpoint_capture_bytes: u64,
    /// Wall-clock time of the whole campaign (golden run, checkpoint
    /// capture, and all trials).
    pub elapsed: std::time::Duration,
}

impl CampaignResult {
    /// Completed trials per wall-clock second — the paper-scale campaign
    /// throughput number (golden-run time is included in the denominator,
    /// as a campaign cannot run without it).
    #[must_use]
    pub fn trials_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.trials.len() as f64 / secs
    }

    /// Fraction of trials that ended catastrophically (Table 2's
    /// "% failures").
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let failures = self.trials.iter().filter(|t| t.is_catastrophic()).count();
        failures as f64 / self.trials.len() as f64
    }

    /// Iterates over the outputs of completed (halted) trials.
    pub fn completed_outputs(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.trials
            .iter()
            .filter_map(|t| t.output.as_deref())
    }

    /// Counts trials by outcome: `(halted, crashed, infinite)`.
    #[must_use]
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut halted = 0;
        let mut crashed = 0;
        let mut infinite = 0;
        for t in &self.trials {
            match t.outcome {
                Outcome::Halted => halted += 1,
                Outcome::Crashed(_) => crashed += 1,
                Outcome::InfiniteRun => infinite += 1,
            }
        }
        (halted, crashed, infinite)
    }
}

fn trial_seed(base: u64, trial: usize) -> u64 {
    // SplitMix64 finalizer: decorrelates consecutive trial indices.
    let mut z = base ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the golden (fault-free) reference for `target`, also measuring the
/// eligible population under `protection`.
///
/// # Panics
///
/// Panics if the golden run does not halt cleanly — the guest program itself
/// is broken, which is a harness bug, not an experimental outcome.
#[must_use]
pub fn golden_run(
    target: &dyn Target,
    tags: &TagMap,
    protection: Protection,
    watchdog: u64,
) -> GoldenRun {
    // Zero budget keeps only the mandatory instruction-zero checkpoint and
    // the maximal stride means the run is never paused: this is exactly the
    // plain golden run, sharing one implementation with the checkpointed
    // path so the two can never diverge.
    let decoded = Arc::new(DecodedProgram::new(target.program()));
    let (golden, _, _) =
        golden_run_checkpointed(target, &decoded, tags, protection, watchdog, 0, u64::MAX);
    golden
}

/// A golden-run snapshot plus the number of eligible writebacks it had
/// seen — the unit the checkpointed scheduler fast-forwards trials to.
struct Checkpoint {
    snapshot: Snapshot,
    eligible_seen: u64,
}

/// One cached hop union: the `(lo, hi)` checkpoint index pair and the
/// sorted, deduplicated union of adjacent page diffs along it.
type HopUnion = ((usize, usize), Arc<Vec<u32>>);

/// Capacity of the hop-union cache: with segmented hops (see
/// [`CheckpointSet::hop_step`]) the working key set is the
/// [`HOP_SEGMENT`]-aligned segments of the ≤ [`MAX_CHECKPOINTS`]
/// checkpoint range plus short partial edges, so a small MRU list covers
/// it without ever growing with trial count.
const HOP_CACHE_CAPACITY: usize = 16;

/// Segment length (in checkpoints) of the aligned waypoints long hops
/// walk through (see [`CheckpointSet::hop_step`]).
const HOP_SEGMENT: usize = 4;

/// The golden checkpoints plus precomputed page diffs between adjacent
/// pairs, so a worker machine hopping from one checkpoint to another
/// copies only the pages that actually differ along the hop (plus its own
/// dirty pages) instead of the whole memory image.
struct CheckpointSet {
    checkpoints: Vec<Checkpoint>,
    /// `adjacent_diffs[i]`: pages on which checkpoints `i` and `i + 1`
    /// differ ([`Snapshot::diff_pages`] — byte-exact, diffs are a restore
    /// correctness contract).
    adjacent_diffs: Vec<Vec<u32>>,
    /// Bounded MRU cache of hop page-diff unions keyed by `(lo, hi)`
    /// checkpoint index pairs: trial clusters on late checkpoints would
    /// otherwise re-union the same adjacent diffs once per trial. Shared
    /// across workers; accessed with `try_lock` so a contended cache
    /// degrades to per-hop unioning, never to serialization.
    hop_cache: Mutex<Vec<HopUnion>>,
    /// Restore-path counters (see [`RestoreStats`]), relaxed — they are
    /// diagnostics, aggregated after the scheduler joins.
    dirty_restores: AtomicU64,
    diff_restores: AtomicU64,
    diff_cache_hits: AtomicU64,
    full_restores: AtomicU64,
}

impl CheckpointSet {
    fn new(checkpoints: Vec<Checkpoint>) -> Self {
        let adjacent_diffs = checkpoints
            .windows(2)
            .map(|w| {
                w[0].snapshot
                    .diff_pages(&w[1].snapshot)
                    .expect("golden checkpoints share one memory size")
            })
            .collect();
        CheckpointSet {
            checkpoints,
            adjacent_diffs,
            hop_cache: Mutex::new(Vec::with_capacity(HOP_CACHE_CAPACITY)),
            dirty_restores: AtomicU64::new(0),
            diff_restores: AtomicU64::new(0),
            diff_cache_hits: AtomicU64::new(0),
            full_restores: AtomicU64::new(0),
        }
    }

    /// The union of adjacent page diffs along the hop `lo..hi`, from the
    /// bounded MRU cache when available; the flag reports whether it was
    /// a cache hit (the caller counts hits only for unions it actually
    /// uses). Unions of at least `cache_page_limit` pages are not cached
    /// — the caller will take the full-image path anyway, and an
    /// unusable union must not occupy an MRU slot. Falls back to
    /// unioning into `diff_scratch` (returning `None`) when the cache
    /// lock is contended — correctness never depends on the cache, only
    /// the re-union work does.
    fn hop_union(
        &self,
        lo: usize,
        hi: usize,
        cache_page_limit: usize,
        diff_scratch: &mut Vec<u32>,
    ) -> (Option<Arc<Vec<u32>>>, bool) {
        if let Ok(mut cache) = self.hop_cache.try_lock() {
            if let Some(pos) = cache.iter().position(|(key, _)| *key == (lo, hi)) {
                let entry = cache.remove(pos);
                let union = Arc::clone(&entry.1);
                cache.insert(0, entry); // MRU to the front
                return (Some(union), true);
            }
            let mut union: Vec<u32> = Vec::new();
            for diff in &self.adjacent_diffs[lo..hi] {
                union.extend_from_slice(diff);
            }
            union.sort_unstable();
            union.dedup();
            let union = Arc::new(union);
            if union.len() < cache_page_limit {
                cache.insert(0, ((lo, hi), Arc::clone(&union)));
                cache.truncate(HOP_CACHE_CAPACITY);
            }
            return (Some(union), false);
        }
        diff_scratch.clear();
        for diff in &self.adjacent_diffs[lo..hi] {
            diff_scratch.extend_from_slice(diff);
        }
        diff_scratch.sort_unstable();
        diff_scratch.dedup();
        (None, false)
    }

    /// The next checkpoint index on the segmented walk from `cur` toward
    /// `dest`: the nearest [`HOP_SEGMENT`]-aligned index in that
    /// direction, clamped to `dest`. Walking through aligned waypoints
    /// gives long hops *canonical* cache keys — every worker crossing the
    /// same region reuses the same `(kS, (k+1)S)` segment unions, no
    /// matter where its own hop started — where a direct `(from, index)`
    /// key would be unique to one worker's momentary position and never
    /// hit the cache.
    fn hop_step(cur: usize, dest: usize) -> usize {
        const S: usize = HOP_SEGMENT;
        if dest > cur {
            ((cur / S + 1) * S).min(dest)
        } else {
            (if cur.is_multiple_of(S) { cur.saturating_sub(S) } else { (cur / S) * S }).max(dest)
        }
    }

    /// Restores `machine` to checkpoint `index` as cheaply as the
    /// machine's current base allows: dirty-page restore when it is
    /// already based on that checkpoint; otherwise, when it is based on
    /// another checkpoint of this set, a walk of page-diff restores
    /// through [`Self::hop_step`] waypoints (each segment an
    /// O(segment-diff) pointer-swap restore, with segment unions served
    /// from the MRU cache); and the plain full-restore fallback when the
    /// base is foreign or a segment union blows past half the image. All
    /// paths are bit-identical: every waypoint restore lands the machine
    /// exactly on that checkpoint's state.
    fn restore(&self, machine: &mut Machine<'_>, index: usize, diff_scratch: &mut Vec<u32>) {
        let target = &self.checkpoints[index];
        let base = machine.base_snapshot_id();
        if base == target.snapshot.id() {
            self.dirty_restores.fetch_add(1, Ordering::Relaxed);
            machine
                .restore(&target.snapshot)
                .expect("checkpoint memory image matches the trial machine");
            return;
        }
        if let Some(from) = self
            .checkpoints
            .iter()
            .position(|c| c.snapshot.id() == base)
        {
            let limit = target.snapshot.page_count() / 2;
            let mut cache_hits = 0u64;
            let mut cur = from;
            loop {
                let next = Self::hop_step(cur, index);
                // Adjacent diffs are symmetric, so backward segments
                // reuse the forward segment's key and union.
                let (lo, hi) = (cur.min(next), cur.max(next));
                let (cached, cache_hit) = self.hop_union(lo, hi, limit, diff_scratch);
                let union: &[u32] = cached.as_deref().map_or(&diff_scratch[..], |u| &u[..]);
                if union.len() >= limit {
                    // Degenerate segment (most of the image changed):
                    // swapping every page is cheaper than walking diffs.
                    // Hits from segments already walked still count — the
                    // liveness gate must see every real cache use.
                    self.full_restores.fetch_add(1, Ordering::Relaxed);
                    self.diff_cache_hits.fetch_add(cache_hits, Ordering::Relaxed);
                    machine
                        .restore(&target.snapshot)
                        .expect("checkpoint memory image matches the trial machine");
                    return;
                }
                machine
                    .restore_with_diff(&self.checkpoints[next].snapshot, union)
                    .expect("checkpoint memory image matches the trial machine");
                if cache_hit {
                    cache_hits += 1;
                }
                if next == index {
                    break;
                }
                cur = next;
            }
            self.diff_restores.fetch_add(1, Ordering::Relaxed);
            self.diff_cache_hits.fetch_add(cache_hits, Ordering::Relaxed);
            return;
        }
        self.full_restores.fetch_add(1, Ordering::Relaxed);
        machine
            .restore(&target.snapshot)
            .expect("checkpoint memory image matches the trial machine");
    }

    /// Snapshot of the restore-path counters.
    fn stats(&self) -> RestoreStats {
        RestoreStats {
            dirty_page: self.dirty_restores.load(Ordering::Relaxed),
            diff_hop: self.diff_restores.load(Ordering::Relaxed),
            diff_union_cache_hits: self.diff_cache_hits.load(Ordering::Relaxed),
            full_image: self.full_restores.load(Ordering::Relaxed),
        }
    }
}

/// Runs the golden reference like [`golden_run`], additionally recording
/// checkpoints: snapshots spaced `stride` dynamic instructions apart,
/// thinned (keep every other, double the stride) whenever the count would
/// exceed the memory budget. Checkpoint 0 is always the post-`prepare`
/// state at instruction zero, so every trial has a restore point. The
/// third return value is the bytes actually materialized by the captures
/// (see [`certa_sim::Machine::capture_bytes`]).
fn golden_run_checkpointed(
    target: &dyn Target,
    decoded: &Arc<DecodedProgram>,
    tags: &TagMap,
    protection: Protection,
    watchdog: u64,
    budget_bytes: usize,
    stride: u64,
) -> (GoldenRun, Vec<Checkpoint>, u64) {
    let program = target.program();
    let config = MachineConfig {
        mem_size: target.mem_size(),
        max_instructions: watchdog,
        profile: true,
    };
    let mut machine = Machine::try_new_with_decoded(program, decoded, &config)
        .unwrap_or_else(|e| panic!("machine configuration rejected: {e}"));
    target.prepare(&mut machine);
    let mut counter = EligibleCounter::new(program, tags, protection);

    let mut checkpoints = vec![Checkpoint {
        snapshot: machine.snapshot(),
        eligible_seen: 0,
    }];
    let max_snapshots =
        (budget_bytes / checkpoints[0].snapshot.size_bytes().max(1)).clamp(1, MAX_CHECKPOINTS);
    let mut stride = stride.max(1);

    let result = loop {
        let next_at = machine.instructions().saturating_add(stride);
        match machine.run_until(&mut counter, next_at) {
            BoundedRun::Finished(result) => break result,
            BoundedRun::Paused => {
                if checkpoints.len() >= max_snapshots {
                    // Keep every other checkpoint (0 always survives) and
                    // double the spacing: the count stays bounded with
                    // O(log golden_len) thinning rounds overall.
                    let mut keep = false;
                    checkpoints.retain(|_| {
                        keep = !keep;
                        keep
                    });
                    stride = stride.saturating_mul(2);
                }
                let last = checkpoints.last().expect("checkpoint 0 is never thinned");
                if machine.instructions() - last.snapshot.instructions() >= stride {
                    checkpoints.push(Checkpoint {
                        snapshot: machine.snapshot(),
                        eligible_seen: counter.count,
                    });
                }
            }
        }
    };

    assert_eq!(
        result.outcome,
        Outcome::Halted,
        "golden run must halt cleanly, got {}",
        result.outcome
    );
    let output = target
        .extract(&machine)
        .expect("golden run must produce readable output");
    let golden = GoldenRun {
        output,
        instructions: result.instructions,
        eligible_population: counter.count,
        exec_counts: machine.exec_counts().to_vec(),
    };
    let capture_bytes = machine.capture_bytes();
    (golden, checkpoints, capture_bytes)
}

/// Runs one trial the slow way: fresh machine, staged input, execute from
/// instruction zero. This is the reference path (`checkpointing: false`)
/// the accelerated path must match bit-for-bit.
fn run_trial_scratch(
    target: &dyn Target,
    decoded: &Arc<DecodedProgram>,
    tags: &TagMap,
    config: &CampaignConfig,
    machine_config: &MachineConfig,
    plan: &FaultPlan,
) -> TrialResult {
    let program = target.program();
    let mut machine = Machine::try_new_with_decoded(program, decoded, machine_config)
        .unwrap_or_else(|e| panic!("machine configuration rejected: {e}"));
    target.prepare(&mut machine);
    let mut injector =
        Injector::with_model(program, tags, config.protection, plan.clone(), config.model);
    let result = machine.run(&mut injector);
    let output = if result.outcome == Outcome::Halted {
        target.extract(&machine)
    } else {
        None
    };
    TrialResult {
        outcome: result.outcome,
        output,
        instructions: result.instructions,
        injected: injector.injected(),
    }
}

/// Largest reconvergence-probe gap (in checkpoints) the exponential
/// backoff reaches. Bounded so a trial that diverges early but heals late
/// still splices within a few probes of healing, while a persistently
/// divergent trial pays at most O(log checkpoints) pauses.
const MAX_PROBE_GAP: usize = 8;

/// Runs one trial from the nearest golden checkpoint at or before its
/// earliest injection point, reusing `machine`'s buffers (restore is
/// pointer swaps into existing page slots, never an allocation).
///
/// Reconvergence probing is adaptive: the first probe lands at the first
/// checkpoint past the plan's *latest* injection point — probing earlier
/// can never splice (some planned flip has not fired), so the trial runs
/// straight through earlier checkpoints without pausing, which also keeps
/// the simulator inside its superblock traces (a pause boundary forces
/// per-op dispatch near it). On a failed probe the gap to the next probe
/// doubles (1, 2, 4, … up to [`MAX_PROBE_GAP`] checkpoints). On a
/// bit-identical match the golden result is spliced in and the suffix is
/// skipped — probing later than the actual reconvergence point only costs
/// execution time, never correctness, because a reconverged trial stays
/// bit-identical to golden at every later checkpoint too. See the module
/// docs for why both directions are exact.
#[allow(clippy::too_many_arguments)]
fn run_trial_checkpointed(
    machine: &mut Machine<'_>,
    target: &dyn Target,
    tags: &TagMap,
    config: &CampaignConfig,
    plan: &FaultPlan,
    checkpoint_set: &CheckpointSet,
    diff_scratch: &mut Vec<u32>,
    golden: &GoldenRun,
) -> TrialResult {
    let checkpoints = &checkpoint_set.checkpoints;
    let planned = plan.len() as u32;
    if planned == 0 {
        // No flips will ever fire, so the trial *is* the golden run.
        return TrialResult {
            outcome: Outcome::Halted,
            output: Some(golden.output.clone()),
            instructions: golden.instructions,
            injected: 0,
        };
    }

    let earliest = plan.earliest_injection().expect("plan is non-empty");
    let latest = plan.latest_injection().expect("plan is non-empty");
    let cp_index = checkpoints
        .partition_point(|c| c.eligible_seen <= earliest)
        .saturating_sub(1);
    let checkpoint = &checkpoints[cp_index];
    checkpoint_set.restore(machine, cp_index, diff_scratch);
    let mut injector =
        Injector::with_model(target.program(), tags, config.protection, plan.clone(), config.model)
            .resume_from(checkpoint.eligible_seen);

    // First checkpoint whose eligible count is past every planned flip
    // (on the golden path; a control-divergent trial cannot splice anyway
    // and the injected == planned guard below stays authoritative).
    let mut next_index = checkpoints.partition_point(|c| c.eligible_seen <= latest);
    let mut probe_gap = 1usize;
    let result = loop {
        let Some(next_cp) = checkpoints.get(next_index) else {
            // Past the last probe point: run out the remainder unbounded.
            break machine.run(&mut injector);
        };
        match machine.run_until(&mut injector, next_cp.snapshot.instructions()) {
            BoundedRun::Finished(result) => break result,
            BoundedRun::Paused => {
                if injector.injected() == planned && machine.state_eq(&next_cp.snapshot) {
                    // Every planned flip is applied and the state has
                    // reconverged with the golden run (the flips were
                    // masked): the remainder is bit-identical to golden.
                    return TrialResult {
                        outcome: Outcome::Halted,
                        output: Some(golden.output.clone()),
                        instructions: golden.instructions,
                        injected: injector.injected(),
                    };
                }
                next_index += probe_gap;
                probe_gap = (probe_gap * 2).min(MAX_PROBE_GAP);
            }
        }
    };
    let output = if result.outcome == Outcome::Halted {
        target.extract(machine)
    } else {
        None
    };
    TrialResult {
        outcome: result.outcome,
        output,
        instructions: result.instructions,
        injected: injector.injected(),
    }
}

/// Runs `order`'s trials across `threads` scoped workers, each owning one
/// reusable worker state (for checkpointed campaigns, a [`Machine`] whose
/// page slots are recycled across trials). Trials are handed out in
/// `order` through an atomic cursor in contiguous chunks of `chunk`
/// trials: with `order` sorted by restore checkpoint, a worker's
/// consecutive trials then restore the checkpoint its machine is already
/// based on (the O(previous trial's written pages) fast path) instead of
/// interleaving checkpoint groups across workers. Results land at their
/// trial index, so the output is independent of the handout. `chunk = 1`
/// degrades to the plain work-stealing cursor.
fn schedule_trials<W, G, F>(
    order: &[usize],
    threads: usize,
    chunk: usize,
    mk_worker: G,
    run: F,
) -> Vec<TrialResult>
where
    W: Send,
    G: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> TrialResult + Sync,
{
    let n = order.len();
    let chunk = chunk.max(1);
    let mut results: Vec<Option<TrialResult>> = vec![None; n];
    let threads = threads.min(n);
    if threads <= 1 || n <= 1 {
        let mut worker = mk_worker();
        for &t in order {
            results[t] = Some(run(&mut worker, t));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut worker = mk_worker();
                        let mut local = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let start = k.saturating_mul(chunk);
                            if start >= n {
                                break;
                            }
                            for &t in &order[start..(start + chunk).min(n)] {
                                local.push((t, run(&mut worker, t)));
                            }
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (t, result) in handle.join().expect("campaign worker panicked") {
                    results[t] = Some(result);
                }
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// Runs a full campaign: golden run, then `config.trials` parallel
/// fault-injection trials (checkpoint-accelerated by default — see the
/// module docs; results are bit-identical to from-scratch execution).
///
/// # Panics
///
/// Panics if the golden run fails (see [`golden_run`]).
#[must_use]
pub fn run_campaign(target: &dyn Target, tags: &TagMap, config: &CampaignConfig) -> CampaignResult {
    let started = std::time::Instant::now();
    // One decode per campaign: the golden run and every trial machine share
    // the same micro-op lowering.
    let decoded = Arc::new(DecodedProgram::new(target.program()));
    // Large budget for the golden run; the trial watchdog derives from it.
    let golden_budget = u64::MAX / 2;
    let (golden, checkpoints, checkpoint_capture_bytes) = if config.checkpointing {
        let (golden, checkpoints, capture_bytes) = golden_run_checkpointed(
            target,
            &decoded,
            tags,
            config.protection,
            golden_budget,
            config.checkpoint_budget_bytes,
            config.checkpoint_stride,
        );
        (golden, Some(CheckpointSet::new(checkpoints)), capture_bytes)
    } else {
        let (golden, _, _) = golden_run_checkpointed(
            target,
            &decoded,
            tags,
            config.protection,
            golden_budget,
            0,
            u64::MAX,
        );
        (golden, None, 0)
    };
    let watchdog = golden
        .instructions
        .saturating_mul(config.watchdog_factor)
        .max(golden.instructions + 1_000_000);

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.threads
    };

    let program = target.program();
    let machine_config = MachineConfig {
        mem_size: target.mem_size(),
        max_instructions: watchdog,
        profile: false,
    };
    // Trials re-lower the program with the golden run's execution counts
    // seeding the superblock policy: only blocks the golden run actually
    // reached get trace bodies, which is where trials spend nearly all of
    // their time (they diverge from golden only after a flip lands).
    // Decoded once, shared by every worker machine.
    let trial_decoded = Arc::new(DecodedProgram::with_policy(
        program,
        &SuperblockPolicy::seeded(golden.exec_counts.clone()),
    ));

    // Pre-sample every trial's plan. This matches sampling inside the
    // trial exactly — the per-trial RNG is used for nothing else — and the
    // scheduler needs the injection points up front to sort trials.
    let plans: Vec<FaultPlan> = (0..config.trials)
        .map(|t| {
            let mut rng = SmallRng::seed_from_u64(trial_seed(config.seed, t));
            FaultPlan::sample(&mut rng, golden.eligible_population, config.errors)
        })
        .collect();

    let (trials, restore_stats) = match &checkpoints {
        Some(checkpoint_set) => {
            // Sort by (restore checkpoint, injection point): trials of one
            // checkpoint group sit contiguously, ordered by how early they
            // diverge. Chunked handout (see `schedule_trials`) then gives
            // each worker a run of same-checkpoint trials — consecutive
            // trials restore incrementally from the previous trial's start
            // state — and the chunk-boundary hops recur across workers, so
            // the bounded hop-union MRU cache serves them warm.
            let cps = &checkpoint_set.checkpoints;
            let mut order: Vec<usize> = (0..config.trials).collect();
            order.sort_by_key(|&t| {
                plans[t].earliest_injection().map_or(
                    (usize::MAX, u64::MAX),
                    |e| {
                        let cp = cps
                            .partition_point(|c| c.eligible_seen <= e)
                            .saturating_sub(1);
                        (cp, e)
                    },
                )
            });
            // Chunks sized so each worker lands several chunks in every
            // checkpoint group: within a group a worker's consecutive
            // chunks restore on the dirty-page fast path, while every
            // worker still crosses every group boundary — so the adjacent
            // checkpoint hops recur once per worker and the hop-union MRU
            // serves all but the first from cache. (One giant chunk per
            // worker would minimize hops but leave every hop key unique —
            // a cold cache and a load-balance cliff.)
            let groups = cps.len().max(1);
            let chunk = (config.trials / (groups * threads * 2).max(1)).clamp(1, 64);
            let trials = schedule_trials(
                &order,
                threads,
                chunk,
                || {
                    let machine = Machine::from_snapshot_with_decoded(
                        program,
                        &trial_decoded,
                        &checkpoint_set.checkpoints[0].snapshot,
                        &machine_config,
                    )
                    .expect("checkpoint matches the campaign machine config");
                    (machine, Vec::new())
                },
                |(machine, diff_scratch), t| {
                    run_trial_checkpointed(
                        machine,
                        target,
                        tags,
                        config,
                        &plans[t],
                        checkpoint_set,
                        diff_scratch,
                        &golden,
                    )
                },
            );
            (trials, checkpoint_set.stats())
        }
        None => {
            let order: Vec<usize> = (0..config.trials).collect();
            let trials = schedule_trials(
                &order,
                threads,
                1,
                || (),
                |(), t| {
                    run_trial_scratch(
                        target,
                        &trial_decoded,
                        tags,
                        config,
                        &machine_config,
                        &plans[t],
                    )
                },
            );
            (trials, RestoreStats::default())
        }
    };

    CampaignResult {
        golden,
        trials,
        restore_stats,
        checkpoint_capture_bytes,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_core::analyze;
    use certa_isa::reg::{T0, T1, T2, T3};

    /// A tiny workload: sums an input array of 64 bytes into a 32-bit output.
    struct SumTarget {
        program: Program,
        input_addr: u32,
        output_addr: u32,
    }

    impl SumTarget {
        fn new() -> Self {
            let mut a = Asm::new();
            let input_addr = a.data_zero(64);
            let output_addr = a.data_zero(4);
            a.func("sum", true);
            a.la(T0, input_addr);
            a.li(T1, 0);
            a.li(T2, 0);
            a.label("loop");
            a.add(T3, T0, T1);
            a.lbu(T3, 0, T3);
            a.add(T2, T2, T3);
            a.addi(T1, T1, 1);
            a.slti(T3, T1, 64);
            a.bnez(T3, "loop");
            a.la(T0, output_addr);
            a.sw(T2, 0, T0);
            a.ret();
            a.endfunc();
            a.func("main", false);
            a.call("sum");
            a.halt();
            a.endfunc();
            SumTarget {
                program: a.assemble().unwrap(),
                input_addr,
                output_addr,
            }
        }
    }

    impl Target for SumTarget {
        fn program(&self) -> &Program {
            &self.program
        }

        fn prepare(&self, machine: &mut Machine<'_>) {
            let input: Vec<u8> = (0..64u8).collect();
            machine.write_bytes(self.input_addr, &input).unwrap();
        }

        fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
            machine.read_bytes(self.output_addr, 4).ok()
        }
    }

    #[test]
    fn golden_run_captures_reference() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let g = golden_run(&t, &tags, Protection::On, 1_000_000);
        let sum = u32::from_le_bytes(g.output.clone().try_into().unwrap());
        assert_eq!(sum, (0..64u32).sum::<u32>());
        assert!(g.eligible_population > 0);
        assert!(g.instructions > 64 * 6);
    }

    #[test]
    fn zero_errors_campaign_matches_golden() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 4,
            errors: 0,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(r.failure_rate(), 0.0);
        for trial in &r.trials {
            assert_eq!(trial.output.as_deref(), Some(&r.golden.output[..]));
            assert_eq!(trial.injected, 0);
        }
    }

    #[test]
    fn protected_campaign_never_crashes_this_kernel() {
        // With protection on, faults hit only the accumulator chain: outputs
        // may differ but control never derails.
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 50,
            errors: 2,
            protection: Protection::On,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(
            r.failure_rate(),
            0.0,
            "protected sum kernel must not fail catastrophically"
        );
        // ... and at least one trial should actually corrupt the sum.
        let corrupted = r
            .completed_outputs()
            .filter(|o| *o != &r.golden.output[..])
            .count();
        assert!(corrupted > 0, "faults should perturb some outputs");
    }

    #[test]
    fn unprotected_campaign_fails_sometimes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 60,
            errors: 4,
            protection: Protection::Off,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(
            r.failure_rate() > 0.0,
            "unprotected injection into addresses/branches should crash sometimes"
        );
    }

    #[test]
    fn campaign_is_deterministic_for_fixed_seed() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 10,
            errors: 1,
            threads: 2,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&t, &tags, &cfg);
        let b = run_campaign(&t, &tags, &cfg);
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.output, y.output);
            assert_eq!(x.instructions, y.instructions);
        }
    }

    #[test]
    fn injected_count_matches_errors_when_run_completes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 8,
            errors: 3,
            protection: Protection::On,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        for trial in r.trials.iter().filter(|t| !t.is_catastrophic()) {
            assert_eq!(trial.injected, 3);
        }
    }

    /// The determinism contract: checkpointed and from-scratch campaigns
    /// must agree on every per-trial observable, under both protection
    /// regimes, with a stride small enough to exercise multi-checkpoint
    /// restore, reconvergence splicing, and the unbounded tail.
    #[test]
    fn checkpointed_trials_match_scratch_exactly() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        for protection in [Protection::On, Protection::Off] {
            for threads in [1, 3] {
                let fast_cfg = CampaignConfig {
                    trials: 24,
                    errors: 2,
                    protection,
                    threads,
                    checkpoint_stride: 50,
                    ..CampaignConfig::default()
                };
                let slow_cfg = CampaignConfig {
                    checkpointing: false,
                    ..fast_cfg.clone()
                };
                let fast = run_campaign(&t, &tags, &fast_cfg);
                let slow = run_campaign(&t, &tags, &slow_cfg);
                assert_eq!(fast.golden.output, slow.golden.output);
                assert_eq!(fast.golden.instructions, slow.golden.instructions);
                assert_eq!(
                    fast.golden.eligible_population,
                    slow.golden.eligible_population
                );
                for (i, (a, b)) in fast.trials.iter().zip(&slow.trials).enumerate() {
                    assert_eq!(a.outcome, b.outcome, "trial {i} outcome ({protection:?})");
                    assert_eq!(a.output, b.output, "trial {i} output ({protection:?})");
                    assert_eq!(
                        a.instructions, b.instructions,
                        "trial {i} instructions ({protection:?})"
                    );
                    assert_eq!(a.injected, b.injected, "trial {i} injected ({protection:?})");
                }
            }
        }
    }

    /// Checkpointing during the golden run must not perturb the golden
    /// observables (pauses are invisible to the simulated program).
    #[test]
    fn golden_run_is_unchanged_by_checkpointing() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let plain = golden_run(&t, &tags, Protection::On, 1_000_000);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (checkpointed, cps, _) = golden_run_checkpointed(
            &t,
            &decoded,
            &tags,
            Protection::On,
            1_000_000,
            256 << 20,
            50,
        );
        assert_eq!(plain.output, checkpointed.output);
        assert_eq!(plain.instructions, checkpointed.instructions);
        assert_eq!(plain.eligible_population, checkpointed.eligible_population);
        assert_eq!(plain.exec_counts, checkpointed.exec_counts);
        assert!(cps.len() > 2, "stride 50 must yield several checkpoints");
        assert!(cps.len() <= MAX_CHECKPOINTS);
        assert_eq!(cps[0].snapshot.instructions(), 0);
        assert!(cps
            .windows(2)
            .all(|w| w[0].snapshot.instructions() < w[1].snapshot.instructions()));
        assert!(cps.windows(2).all(|w| w[0].eligible_seen <= w[1].eligible_seen));
    }

    /// Tiny budgets degrade gracefully to a single instruction-zero
    /// checkpoint (equivalent to re-running with reused buffers).
    #[test]
    fn single_checkpoint_budget_still_matches_scratch() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let fast_cfg = CampaignConfig {
            trials: 10,
            errors: 3,
            protection: Protection::Off,
            threads: 2,
            checkpoint_budget_bytes: 1, // clamps to one snapshot
            ..CampaignConfig::default()
        };
        let slow_cfg = CampaignConfig {
            checkpointing: false,
            ..fast_cfg.clone()
        };
        let fast = run_campaign(&t, &tags, &fast_cfg);
        let slow = run_campaign(&t, &tags, &slow_cfg);
        for (a, b) in fast.trials.iter().zip(&slow.trials) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.output, b.output);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.injected, b.injected);
        }
    }

    /// Checkpoint-hopping restores (forward and backward, through the
    /// precomputed adjacent page diffs) must land on bit-identical state.
    #[test]
    fn checkpoint_set_hops_are_bit_identical() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) =
            golden_run_checkpointed(&t, &decoded, &tags, Protection::On, 1_000_000, 256 << 20, 40);
        assert!(checkpoints.len() >= 4, "need several checkpoints to hop");
        let set = CheckpointSet::new(checkpoints);
        assert_eq!(set.adjacent_diffs.len(), set.checkpoints.len() - 1);

        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        let mut machine = Machine::from_snapshot_with_decoded(
            &t.program,
            &decoded,
            &set.checkpoints[0].snapshot,
            &config,
        )
        .unwrap();
        let mut scratch = Vec::new();
        // Forward hops (adjacent and multi-step), with dirty state in
        // between; then a backward hop.
        for &index in &[1usize, 3, 2, 0, 3] {
            machine.run_until_simple(machine.instructions() + 17);
            set.restore(&mut machine, index, &mut scratch);
            assert!(
                machine.state_eq(&set.checkpoints[index].snapshot),
                "hop to checkpoint {index} must be exact"
            );
        }
    }

    /// Repeated hops between the same checkpoint pair must be served from
    /// the hop-union cache (after the first), and the restore-path
    /// counters must partition the restores.
    #[test]
    fn hop_union_cache_hits_on_repeated_hops() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) =
            golden_run_checkpointed(&t, &decoded, &tags, Protection::On, 1_000_000, 256 << 20, 40);
        assert!(checkpoints.len() >= 4);
        let set = CheckpointSet::new(checkpoints);
        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        let mut machine = Machine::from_snapshot_with_decoded(
            &t.program,
            &decoded,
            &set.checkpoints[0].snapshot,
            &config,
        )
        .unwrap();
        let mut scratch = Vec::new();
        // Ping-pong over the same pair: hop 0→3 unions once, every
        // further 0↔3 hop (diffs are symmetric) is a cache hit.
        for &index in &[3usize, 0, 3, 0, 3] {
            set.restore(&mut machine, index, &mut scratch);
            assert!(machine.state_eq(&set.checkpoints[index].snapshot));
        }
        let stats = set.stats();
        assert_eq!(stats.diff_hop, 5, "every ping-pong hop is diff-based");
        assert_eq!(
            stats.diff_union_cache_hits, 4,
            "all but the first (0,3) union come from the cache"
        );
        assert_eq!(stats.dirty_page, 0);
        assert_eq!(stats.full_image, 0);
        assert_eq!(stats.total(), 5);
    }

    /// A machine whose base snapshot is foreign to the checkpoint set must
    /// take (and count) the full-image path, completing the
    /// dirty/diff/cache/full partition of [`RestoreStats`]; a follow-up
    /// restore of the same checkpoint is back on the dirty-page path.
    #[test]
    fn foreign_base_takes_the_full_image_path() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) =
            golden_run_checkpointed(&t, &decoded, &tags, Protection::On, 1_000_000, 256 << 20, 40);
        let set = CheckpointSet::new(checkpoints);
        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        // A snapshot that is not part of the checkpoint set.
        let mut foreign = Machine::try_new_with_decoded(&t.program, &decoded, &config).unwrap();
        t.prepare(&mut foreign);
        foreign.run_until_simple(13);
        let foreign_snap = foreign.snapshot();

        let mut machine =
            Machine::from_snapshot_with_decoded(&t.program, &decoded, &foreign_snap, &config)
                .unwrap();
        let mut scratch = Vec::new();
        set.restore(&mut machine, 2, &mut scratch);
        assert!(machine.state_eq(&set.checkpoints[2].snapshot));
        set.restore(&mut machine, 2, &mut scratch);
        let stats = set.stats();
        assert_eq!(stats.full_image, 1, "foreign base cannot hop by diff");
        assert_eq!(stats.dirty_page, 1, "second restore is same-base");
        assert_eq!(stats.diff_hop, 0);
        assert_eq!(stats.diff_union_cache_hits, 0);
        assert_eq!(stats.total(), 2);
    }

    /// The campaign reports wall-clock throughput and the bytes its
    /// checkpoint captures actually materialized (zero without
    /// checkpointing — there are no checkpoints to pay for).
    #[test]
    fn campaign_reports_throughput_and_capture_bytes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 8,
            errors: 1,
            checkpoint_stride: 50,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(r.elapsed > std::time::Duration::ZERO);
        assert!(r.trials_per_second() > 0.0);
        assert!(
            r.checkpoint_capture_bytes > 0,
            "checkpoint captures must account for the pages they materialize"
        );
        let scratch = run_campaign(
            &t,
            &tags,
            &CampaignConfig {
                checkpointing: false,
                ..cfg
            },
        );
        assert_eq!(scratch.checkpoint_capture_bytes, 0);
        assert!(scratch.trials_per_second() > 0.0);
    }

    /// The campaign surfaces the restore breakdown, and it accounts for
    /// every checkpointed trial restore (scratch campaigns report zeros).
    #[test]
    fn campaign_reports_restore_stats() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 16,
            errors: 2,
            threads: 2,
            checkpoint_stride: 50,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(
            r.restore_stats.total() >= 1,
            "checkpointed trials must restore at least once: {:?}",
            r.restore_stats
        );
        let scratch = run_campaign(
            &t,
            &tags,
            &CampaignConfig {
                checkpointing: false,
                ..cfg
            },
        );
        assert_eq!(scratch.restore_stats, RestoreStats::default());
    }

    #[test]
    fn outcome_counts_partition_trials() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 30,
            errors: 5,
            protection: Protection::Off,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        let (h, c, i) = r.outcome_counts();
        assert_eq!(h + c + i, 30);
    }
}

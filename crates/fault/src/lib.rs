//! # certa-fault
//!
//! The fault-injection engine reproducing the paper's methodology (§4):
//!
//! > *"We flip a bit in the result of an instruction that was tagged as not
//! > influencing a control decision. \[...\] Single bit-flip errors were
//! > randomly inserted with a uniform distribution. Once an error was
//! > introduced in any instruction, it would propagate to all dependent
//! > instructions."*
//!
//! A **campaign** first performs a fault-free *golden run* (capturing the
//! reference output, the dynamic instruction count, and the eligible
//! injection population), then executes Monte-Carlo trials: each trial
//! uniformly samples `errors` distinct dynamic executions of *eligible*
//! instructions and XORs one uniformly-chosen bit into each sampled result.
//!
//! Eligibility depends on the [`Protection`] *regime* — the
//! control-vs-data axis of the experiment:
//!
//! * [`Protection::None`] — every value-producing instruction is fair game
//!   (the unprotected baseline of Table 2).
//! * [`Protection::ControlOnly`] — only instructions tagged
//!   [`certa_core::Tag::LowReliability`] by the static analysis receive
//!   faults (everything else is assumed protected by redundancy — the
//!   paper's proposed scheme).
//! * [`Protection::DataOnly`] — the complement: faults land only on the
//!   instructions the analysis would have shielded.
//! * [`Protection::Full`] — nothing is eligible; the all-masked sanity
//!   pole of the regime matrix.
//!
//! Orthogonally, [`FaultTarget`] selects *where* faults land: register
//! writebacks (the paper's model) or resident memory cells of the guest
//! data segment ([`MemoryFaultPlan`] — bits flipped in stored state at
//! sampled instruction boundaries, through the simulator's copy-on-write
//! page store).
//!
//! Trials run in parallel with deterministic per-trial seeds, and each run
//! is bounded by a watchdog of `watchdog_factor ×` the golden instruction
//! count; runs that exceed it are the paper's "infinite execution"
//! failures. Above the watchdog sits a *harness* containment layer: every
//! trial attempt runs under panic isolation with a wall-clock deadline,
//! failed attempts are retried once from rebuilt machine state, and a
//! trial that fails twice is reported as a [`TrialStatus::HarnessError`]
//! — never silently dropped (the campaign asserts the accounting
//! reconciles; see [`CampaignResult::verify_reconciliation`]).
//! Per-regime verdict distributions aggregate into [`ToleranceProfile`]
//! rows (verdict counts plus Wilson 95% intervals) — the regime-matrix
//! table the `campaign_matrix` binary emits.
//!
//! ## Checkpoint acceleration
//!
//! By default ([`CampaignConfig::checkpointing`]) campaigns do not
//! re-execute each trial from instruction zero. The golden run records up
//! to 32 simulator snapshots together with their eligible-writeback
//! counts; each trial then restores the latest checkpoint at or before its
//! earliest planned flip, executes only from there, and — once all of its
//! flips have been applied — is spliced back onto the golden result as
//! soon as its architectural state reconverges with a golden checkpoint.
//! Worker threads own one reusable [`certa_sim::Machine`] each, so a
//! restore never allocates — and thanks to the simulator's dirty-page
//! tracking, re-restoring the checkpoint a worker is already based on
//! copies only the pages the previous trial touched. Trials are scheduled
//! sorted by injection point so neighbors share warm checkpoints, and the
//! program is lowered once per campaign to the simulator's predecoded
//! micro-op form ([`certa_sim::DecodedProgram`]), shared by the golden run
//! and every trial machine.
//!
//! The acceleration is **exact**: outcome, output, instruction count, and
//! injected count of every trial are bit-identical to from-scratch
//! execution (see the determinism contract in the `campaign` module docs,
//! the `checkpointed_trials_match_scratch_exactly` test, and the
//! workspace-level property suite). A campaign-throughput criterion
//! bench (`crates/bench/benches/campaign.rs`) measures the speedup — about
//! 7× for a 12M-instruction golden run at 24 trials.
//!
//! ## Distributed seam
//!
//! [`CampaignSession`] holds a prepared campaign open — golden run,
//! checkpoint set, predecoded trial program, pre-sampled plans — so trial
//! subsets can run on demand ([`CampaignSession::run_subset`]),
//! bit-identical to the in-process scheduler. The `certa-dist` crate
//! splits a campaign along this seam into a lease-granting coordinator
//! and worker processes; the [`wire`] module provides the byte-exact
//! (de)serialization of [`TrialRecord`]s and friends that crosses that
//! boundary.

mod campaign;
mod injector;
mod regime;
mod stats;
pub mod wire;

pub use campaign::{
    golden_run, run_campaign, run_campaign_with_aot, CampaignConfig, CampaignResult,
    CampaignSession, GoldenRun,
    HarnessFailure, HarnessFaultInjection, HarnessStats, OutcomeCounts, RestoreStats, Target,
    TrialChunk, TrialRecord, TrialResult, TrialStatus,
};
pub use injector::{ErrorModel, FaultPlan, Injector};
pub use regime::{FaultTarget, MemoryFaultPlan, Protection, ToleranceProfile};
pub use stats::{mean, proportion_ci95, stddev};

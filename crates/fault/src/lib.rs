//! # certa-fault
//!
//! The fault-injection engine reproducing the paper's methodology (§4):
//!
//! > *"We flip a bit in the result of an instruction that was tagged as not
//! > influencing a control decision. \[...\] Single bit-flip errors were
//! > randomly inserted with a uniform distribution. Once an error was
//! > introduced in any instruction, it would propagate to all dependent
//! > instructions."*
//!
//! A **campaign** first performs a fault-free *golden run* (capturing the
//! reference output, the dynamic instruction count, and the eligible
//! injection population), then executes Monte-Carlo trials: each trial
//! uniformly samples `errors` distinct dynamic executions of *eligible*
//! instructions and XORs one uniformly-chosen bit into each sampled result.
//!
//! Eligibility depends on [`Protection`]:
//!
//! * [`Protection::On`] — only instructions tagged
//!   [`certa_core::Tag::LowReliability`] by the static analysis receive
//!   faults (everything else is assumed protected by redundancy, per the
//!   paper).
//! * [`Protection::Off`] — every value-producing instruction is fair game
//!   (the unprotected baseline of Table 2).
//!
//! Trials run in parallel with deterministic per-trial seeds, and each run
//! is bounded by a watchdog of `watchdog_factor ×` the golden instruction
//! count; runs that exceed it are the paper's "infinite execution" failures.

mod campaign;
mod injector;
mod stats;

pub use campaign::{
    golden_run, run_campaign, CampaignConfig, CampaignResult, GoldenRun, Target, TrialResult,
};
pub use injector::{ErrorModel, FaultPlan, Injector, Protection};
pub use stats::{mean, proportion_ci95, stddev};

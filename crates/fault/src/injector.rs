//! The bit-flip injector: a [`WritebackHook`] that tampers with sampled
//! dynamic executions of eligible instructions.

use certa_core::TagMap;
use certa_isa::Program;
use certa_sim::WritebackHook;
use rand::seq::index::sample as index_sample;
use rand::Rng;

use crate::regime::Protection;

/// The kind of value corruption applied at an injection point.
///
/// The paper studies [`ErrorModel::SingleBitFlip`]; the other models are
/// provided as extensions for studying correlated upsets, burst upsets,
/// and latched faults with the same campaign machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ErrorModel {
    /// XOR one uniformly chosen bit (the paper's soft-error model).
    #[default]
    SingleBitFlip,
    /// XOR two adjacent bits (a correlated double upset).
    AdjacentDoubleBitFlip,
    /// XOR a run of `len` adjacent bits starting at the chosen position
    /// (wrapping within the value's width) — a multi-bit burst upset.
    /// `len = 1` degenerates to [`ErrorModel::SingleBitFlip`]; `len = 2`
    /// to [`ErrorModel::AdjacentDoubleBitFlip`].
    BurstFlip {
        /// Burst length in bits (clamped to at least 1).
        len: u8,
    },
    /// Clear one uniformly chosen bit (stuck-at-0 on the latched result).
    StuckAtZero,
    /// Set one uniformly chosen bit (stuck-at-1 on the latched result).
    StuckAtOne,
}

impl ErrorModel {
    /// Applies the model to a 32-bit integer result at `bit % 32`.
    #[inline]
    #[must_use]
    pub fn apply_u32(self, value: u32, bit: u8) -> u32 {
        let m = 1u32 << (bit % 32);
        match self {
            ErrorModel::SingleBitFlip => value ^ m,
            ErrorModel::AdjacentDoubleBitFlip => value ^ m ^ m.rotate_left(1),
            ErrorModel::BurstFlip { len } => {
                let mut mask = 0u32;
                for i in 0..u32::from(len.max(1)).min(32) {
                    mask |= m.rotate_left(i);
                }
                value ^ mask
            }
            ErrorModel::StuckAtZero => value & !m,
            ErrorModel::StuckAtOne => value | m,
        }
    }

    /// Applies the model to a 64-bit float result at `bit % 64`.
    #[inline]
    #[must_use]
    pub fn apply_f64(self, value: f64, bit: u8) -> f64 {
        let bits = value.to_bits();
        let m = 1u64 << (bit % 64);
        let new = match self {
            ErrorModel::SingleBitFlip => bits ^ m,
            ErrorModel::AdjacentDoubleBitFlip => bits ^ m ^ m.rotate_left(1),
            ErrorModel::BurstFlip { len } => {
                let mut mask = 0u64;
                for i in 0..u32::from(len.max(1)).min(64) {
                    mask |= m.rotate_left(i);
                }
                bits ^ mask
            }
            ErrorModel::StuckAtZero => bits & !m,
            ErrorModel::StuckAtOne => bits | m,
        };
        f64::from_bits(new)
    }
}

/// A per-trial injection plan: which eligible dynamic executions receive a
/// flip, and which bit position is flipped.
///
/// Bit positions are sampled in `0..64`; integer writebacks use the position
/// modulo 32, which keeps the per-bit distribution uniform.
///
/// Pairs are stored sorted by execution index, so lookups are binary
/// searches and [`FaultPlan::earliest_injection`] — the quantity the
/// checkpointing campaign scheduler sorts trials by — is `O(1)`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(eligible execution index, bit position)`, sorted by index, unique
    /// indices.
    flips: Vec<(u64, u8)>,
}

impl FaultPlan {
    /// Samples a plan with `errors` distinct injection points uniformly
    /// distributed over a population of `eligible` dynamic executions.
    ///
    /// If `errors` exceeds the population, every execution receives a flip.
    pub fn sample<R: Rng>(rng: &mut R, eligible: u64, errors: u64) -> Self {
        if eligible == 0 || errors == 0 {
            return FaultPlan::default();
        }
        let errors = errors.min(eligible);
        // `index_sample` works on usize; the eligible populations in this
        // study are far below usize::MAX.
        let picks = index_sample(rng, eligible as usize, errors as usize);
        let mut flips: Vec<(u64, u8)> = picks
            .into_iter()
            .map(|p| (p as u64, rng.gen_range(0..64u8)))
            .collect();
        flips.sort_unstable_by_key(|&(idx, _)| idx);
        FaultPlan { flips }
    }

    /// Builds a plan from explicit `(execution index, bit)` pairs (tests and
    /// targeted experiments). When an index appears more than once, the
    /// last pair wins.
    #[must_use]
    pub fn from_pairs(pairs: &[(u64, u8)]) -> Self {
        let mut flips = pairs.to_vec();
        // Stable-sort the reversed list so that, within equal indices, the
        // pair latest in `pairs` comes first and survives the dedup.
        flips.reverse();
        flips.sort_by_key(|&(idx, _)| idx);
        flips.dedup_by_key(|&mut (idx, _)| idx);
        FaultPlan { flips }
    }

    /// Number of planned flips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// Whether the plan contains no flips.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// The smallest planned eligible-execution index, or `None` for an
    /// empty plan. The campaign scheduler restores each trial from the
    /// latest checkpoint at or before this point.
    #[must_use]
    pub fn earliest_injection(&self) -> Option<u64> {
        self.flips.first().map(|&(idx, _)| idx)
    }

    /// The largest planned eligible-execution index, or `None` for an
    /// empty plan. The campaign's reconvergence probe starts at the first
    /// checkpoint past this point — earlier probes can never splice,
    /// because not every planned flip has been applied yet.
    #[must_use]
    pub fn latest_injection(&self) -> Option<u64> {
        self.flips.last().map(|&(idx, _)| idx)
    }

    /// The planned `(execution index, bit)` pairs, sorted by index.
    #[must_use]
    pub fn pairs(&self) -> &[(u64, u8)] {
        &self.flips
    }

    /// The planned bit position for `exec_index`, if any (binary search
    /// over the sorted plan).
    #[inline]
    #[must_use]
    pub fn bit_for(&self, exec_index: u64) -> Option<u8> {
        self.flips
            .binary_search_by_key(&exec_index, |&(idx, _)| idx)
            .ok()
            .map(|pos| self.flips[pos].1)
    }
}

/// The [`WritebackHook`] that applies a [`FaultPlan`] during simulation.
///
/// Counts eligible writebacks as they happen; when the count matches a
/// planned injection point the destination value has one bit flipped before
/// it is written to the register file. Corruption then propagates naturally
/// through dependent instructions, as in the paper.
#[derive(Debug)]
pub struct Injector {
    eligible: EligibleSet,
    plan: FaultPlan,
    model: ErrorModel,
    seen: u64,
    /// Position in the sorted plan of the next flip to apply. Because
    /// `seen` only grows, the plan is consumed front to back — no lookup
    /// per writeback, just one comparison.
    cursor: usize,
    injected: u32,
}

#[derive(Debug)]
enum EligibleSet {
    /// A regime with a per-instruction mask (see
    /// [`Protection::eligibility_mask`]).
    Tagged(Vec<bool>),
    /// [`Protection::None`]: every value-producing writeback is eligible.
    All,
}

impl EligibleSet {
    fn for_regime(program: &Program, tags: &TagMap, protection: Protection) -> EligibleSet {
        match protection.eligibility_mask(program, tags) {
            Some(mask) => EligibleSet::Tagged(mask),
            None => EligibleSet::All,
        }
    }
}

impl Injector {
    /// Creates an injector for `program` under the given protection regime
    /// with the paper's single-bit-flip model.
    #[must_use]
    pub fn new(
        program: &Program,
        tags: &TagMap,
        protection: Protection,
        plan: FaultPlan,
    ) -> Injector {
        Self::with_model(program, tags, protection, plan, ErrorModel::SingleBitFlip)
    }

    /// Creates an injector with an explicit [`ErrorModel`].
    #[must_use]
    pub fn with_model(
        program: &Program,
        tags: &TagMap,
        protection: Protection,
        plan: FaultPlan,
        model: ErrorModel,
    ) -> Injector {
        Injector {
            eligible: EligibleSet::for_regime(program, tags, protection),
            plan,
            model,
            seen: 0,
            cursor: 0,
            injected: 0,
        }
    }

    /// Seeds the injector as if `eligible_seen` eligible writebacks had
    /// already happened — used when a trial resumes from a checkpoint
    /// taken mid-way through the golden run. Planned flips below
    /// `eligible_seen` are skipped, exactly as they would have been missed
    /// by a hook attached after that point.
    ///
    /// The campaign scheduler only resumes from checkpoints at or before a
    /// plan's [`FaultPlan::earliest_injection`], so in practice nothing is
    /// skipped and resumed trials are bit-identical to from-scratch ones.
    #[must_use]
    pub fn resume_from(mut self, eligible_seen: u64) -> Self {
        self.seen = eligible_seen;
        self.cursor = self
            .plan
            .pairs()
            .partition_point(|&(idx, _)| idx < eligible_seen);
        self
    }

    /// Number of eligible writebacks observed so far.
    #[must_use]
    pub fn eligible_seen(&self) -> u64 {
        self.seen
    }

    /// Number of planned flips (applied or still pending).
    #[must_use]
    pub fn planned(&self) -> u32 {
        self.plan.len() as u32
    }

    /// Number of bit flips actually applied so far.
    #[must_use]
    pub fn injected(&self) -> u32 {
        self.injected
    }

    #[inline]
    fn is_eligible(&self, instr_index: usize) -> bool {
        match &self.eligible {
            EligibleSet::Tagged(set) => set[instr_index],
            EligibleSet::All => true,
        }
    }

    #[inline]
    fn next_bit(&mut self, instr_index: usize) -> Option<u8> {
        if !self.is_eligible(instr_index) {
            return None;
        }
        let idx = self.seen;
        self.seen += 1;
        let &(at, bit) = self.plan.pairs().get(self.cursor)?;
        if at != idx {
            return None;
        }
        self.cursor += 1;
        self.injected += 1;
        Some(bit)
    }
}

impl WritebackHook for Injector {
    #[inline]
    fn int_writeback(&mut self, instr_index: usize, value: u32) -> u32 {
        match self.next_bit(instr_index) {
            Some(bit) => self.model.apply_u32(value, bit),
            None => value,
        }
    }

    #[inline]
    fn float_writeback(&mut self, instr_index: usize, value: f64) -> f64 {
        match self.next_bit(instr_index) {
            Some(bit) => self.model.apply_f64(value, bit),
            None => value,
        }
    }
}

/// Counts eligible writebacks without injecting (used to size the population
/// for plan sampling when exec-count profiling is unavailable).
#[derive(Debug)]
pub(crate) struct EligibleCounter {
    eligible: Vec<bool>,
    pub(crate) count: u64,
}

impl EligibleCounter {
    pub(crate) fn new(program: &Program, tags: &TagMap, protection: Protection) -> Self {
        let eligible = protection
            .eligibility_mask(program, tags)
            .unwrap_or_else(|| vec![true; program.code.len()]);
        EligibleCounter { eligible, count: 0 }
    }
}

impl WritebackHook for EligibleCounter {
    #[inline]
    fn int_writeback(&mut self, instr_index: usize, value: u32) -> u32 {
        self.count += u64::from(self.eligible[instr_index]);
        value
    }

    #[inline]
    fn float_writeback(&mut self, instr_index: usize, value: f64) -> f64 {
        self.count += u64::from(self.eligible[instr_index]);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn plan_sampling_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let plan = FaultPlan::sample(&mut rng, 1000, 10);
        assert_eq!(plan.len(), 10);
        let plan = FaultPlan::sample(&mut rng, 5, 10);
        assert_eq!(plan.len(), 5, "errors capped at population");
        let plan = FaultPlan::sample(&mut rng, 0, 10);
        assert!(plan.is_empty());
        let plan = FaultPlan::sample(&mut rng, 100, 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn plan_indices_within_population() {
        let mut rng = SmallRng::seed_from_u64(42);
        let plan = FaultPlan::sample(&mut rng, 50, 20);
        for &(idx, bit) in plan.pairs() {
            assert!(idx < 50);
            assert!(bit < 64);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = FaultPlan::sample(&mut SmallRng::seed_from_u64(9), 1000, 5);
        let b = FaultPlan::sample(&mut SmallRng::seed_from_u64(9), 1000, 5);
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn plan_pairs_are_sorted_and_unique() {
        let plan = FaultPlan::sample(&mut SmallRng::seed_from_u64(3), 10_000, 200);
        assert!(plan.pairs().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(plan.earliest_injection(), Some(plan.pairs()[0].0));
    }

    #[test]
    fn earliest_injection_matches_minimum() {
        assert_eq!(FaultPlan::default().earliest_injection(), None);
        let plan = FaultPlan::from_pairs(&[(17, 3), (4, 1), (99, 0)]);
        assert_eq!(plan.earliest_injection(), Some(4));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn from_pairs_sorts_and_last_duplicate_wins() {
        let plan = FaultPlan::from_pairs(&[(9, 1), (2, 5), (9, 7), (2, 6)]);
        assert_eq!(plan.pairs(), &[(2, 6), (9, 7)]);
        assert_eq!(plan.bit_for(2), Some(6));
        assert_eq!(plan.bit_for(9), Some(7));
        assert_eq!(plan.bit_for(3), None);
    }

    #[test]
    fn bit_for_binary_search_agrees_with_linear_scan() {
        let plan = FaultPlan::sample(&mut SmallRng::seed_from_u64(11), 5_000, 64);
        for probe in 0..5_000u64 {
            let linear = plan
                .pairs()
                .iter()
                .find(|&&(idx, _)| idx == probe)
                .map(|&(_, bit)| bit);
            assert_eq!(plan.bit_for(probe), linear, "probe {probe}");
        }
    }

    #[test]
    fn error_models_apply_correctly() {
        assert_eq!(ErrorModel::SingleBitFlip.apply_u32(0b1000, 3), 0);
        assert_eq!(ErrorModel::SingleBitFlip.apply_u32(0, 3), 0b1000);
        assert_eq!(ErrorModel::AdjacentDoubleBitFlip.apply_u32(0, 3), 0b11000);
        // double flip at the top bit wraps to bit 0
        assert_eq!(
            ErrorModel::AdjacentDoubleBitFlip.apply_u32(0, 31),
            0x8000_0001
        );
        assert_eq!(ErrorModel::StuckAtZero.apply_u32(0xFF, 0), 0xFE);
        assert_eq!(ErrorModel::StuckAtZero.apply_u32(0xFE, 0), 0xFE, "idempotent");
        assert_eq!(ErrorModel::StuckAtOne.apply_u32(0, 4), 0x10);
        assert_eq!(ErrorModel::StuckAtOne.apply_u32(0x10, 4), 0x10, "idempotent");
        // float: flipping the same bit twice restores the value
        let v = 1234.5678f64;
        let once = ErrorModel::SingleBitFlip.apply_f64(v, 17);
        let twice = ErrorModel::SingleBitFlip.apply_f64(once, 17);
        assert_eq!(twice.to_bits(), v.to_bits());
    }

    #[test]
    fn stuck_at_models_are_idempotent_for_all_bits() {
        for bit in 0..32u8 {
            for value in [0u32, u32::MAX, 0xDEAD_BEEF] {
                let z = ErrorModel::StuckAtZero.apply_u32(value, bit);
                assert_eq!(ErrorModel::StuckAtZero.apply_u32(z, bit), z);
                let o = ErrorModel::StuckAtOne.apply_u32(value, bit);
                assert_eq!(ErrorModel::StuckAtOne.apply_u32(o, bit), o);
            }
        }
    }

    #[test]
    fn resumed_injector_skips_prior_indices() {
        use certa_sim::WritebackHook;

        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.halt();
        a.endfunc();
        let program = a.assemble().unwrap();
        let tags = certa_core::analyze(&program);
        let plan = FaultPlan::from_pairs(&[(1, 0), (4, 2)]);

        // Fresh injector: flips fire at eligible indices 1 and 4.
        let mut fresh = Injector::new(&program, &tags, Protection::None, plan.clone());
        let flipped: Vec<bool> = (0..6)
            .map(|_| fresh.int_writeback(0, 0) != 0)
            .collect();
        assert_eq!(flipped, [false, true, false, false, true, false]);
        assert_eq!(fresh.injected(), 2);
        assert_eq!(fresh.planned(), 2);

        // Resumed at 2: index 1 is in the past and must be skipped; the
        // flip at index 4 fires after two more writebacks (indices 2, 3).
        let mut resumed =
            Injector::new(&program, &tags, Protection::None, plan).resume_from(2);
        assert_eq!(resumed.eligible_seen(), 2);
        let flipped: Vec<bool> = (0..4)
            .map(|_| resumed.int_writeback(0, 0) != 0)
            .collect();
        assert_eq!(flipped, [false, false, true, false]);
        assert_eq!(resumed.injected(), 1);
    }

    #[test]
    fn uniformity_over_population() {
        // Chi-square-ish sanity: over many samples, each of 10 slots should
        // be hit roughly equally.
        let mut counts = [0u32; 10];
        for seed in 0..4000 {
            let plan = FaultPlan::sample(&mut SmallRng::seed_from_u64(seed), 10, 1);
            for &(idx, _) in plan.pairs() {
                counts[idx as usize] += 1;
            }
        }
        let expected = 400.0;
        for &c in &counts {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.25,
                "slot count {c} deviates too far from {expected}: {counts:?}"
            );
        }
    }
}

//! Fault-model regimes: *where* faults may land ([`FaultTarget`]) and
//! *which* instructions are shielded ([`Protection`]), plus the
//! per-regime [`ToleranceProfile`] aggregation the regime-matrix
//! experiment reports.
//!
//! The paper's experiment is a matrix: each workload is campaigned under
//! several protection regimes, and each trial is classified into the
//! six-way verdict taxonomy of [`certa_fidelity::verdict`]. The
//! [`ToleranceProfile`] rows of that matrix — verdict counts plus Wilson
//! 95% confidence intervals — are what separates error-tolerant data
//! from must-protect control data.

use certa_core::TagMap;
use certa_fidelity::verdict::VerdictCounts;
use certa_isa::Program;
use rand::seq::index::sample as index_sample;
use rand::Rng;

use crate::stats::proportion_ci95;

/// The protection regime: which instruction results the static analysis
/// shields from injection. This is the control-vs-data axis of the
/// paper — [`Protection::ControlOnly`] is its proposed scheme (protect
/// everything that can influence control, leave tolerant data exposed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// No protection: every value-producing instruction is fault-eligible
    /// (the unprotected baseline of Table 2).
    None,
    /// Control data protected: only instructions tagged
    /// [`certa_core::Tag::LowReliability`] (pure data) receive faults —
    /// the paper's scheme.
    ControlOnly,
    /// The complement regime: *data* is protected and faults land only on
    /// instructions the analysis would have shielded (control,
    /// address-feeding, and other non-low-reliability value producers).
    DataOnly,
    /// Everything protected: no instruction is fault-eligible. Every
    /// trial must classify as masked — the all-shielded sanity pole of
    /// the matrix.
    Full,
}

impl Protection {
    /// The four regimes in matrix presentation order.
    #[must_use]
    pub fn all() -> [Protection; 4] {
        [
            Protection::None,
            Protection::ControlOnly,
            Protection::DataOnly,
            Protection::Full,
        ]
    }

    /// Stable snake_case label (serialization and reporting).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::ControlOnly => "control_only",
            Protection::DataOnly => "data_only",
            Protection::Full => "full",
        }
    }

    /// Per-instruction eligibility mask under this regime: `None` means
    /// *every* value-producing instruction is eligible (no mask needed on
    /// the hot path), otherwise `mask[i]` says whether instruction `i`'s
    /// writebacks may receive faults.
    #[must_use]
    pub fn eligibility_mask(self, program: &Program, tags: &TagMap) -> Option<Vec<bool>> {
        match self {
            Protection::None => None,
            Protection::ControlOnly => Some(
                (0..program.code.len())
                    .map(|i| tags.is_low_reliability(i))
                    .collect(),
            ),
            Protection::DataOnly => Some(
                (0..program.code.len())
                    .map(|i| !tags.is_low_reliability(i))
                    .collect(),
            ),
            Protection::Full => Some(vec![false; program.code.len()]),
        }
    }
}

/// Where a campaign's faults land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultTarget {
    /// Register-writeback faults: bits flipped in instruction results as
    /// they are written back (the paper's model, filtered by
    /// [`Protection`]).
    #[default]
    Registers,
    /// Memory-cell faults: bits flipped directly in resident pages of the
    /// guest's data segment at sampled instruction boundaries — upsets in
    /// stored state rather than in flight. Orthogonal to the instruction
    /// tag regime (a stored bit has no tag), so memory campaigns run
    /// under [`Protection::None`] semantics regardless of the configured
    /// regime.
    MemoryCells,
}

impl FaultTarget {
    /// Stable snake_case label (serialization and reporting).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultTarget::Registers => "registers",
            FaultTarget::MemoryCells => "memory_cells",
        }
    }
}

/// A per-trial memory-cell fault plan: which instruction boundaries pause
/// the run to flip which bit of which data-segment byte.
///
/// Flips are keyed by the *dynamic instruction count* at which they are
/// applied (distinct per plan, sorted ascending), which makes memory
/// trials exactly as checkpoint-acceleratable as register trials: before
/// the earliest flip boundary the trial is bit-identical to the golden
/// run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryFaultPlan {
    /// `(instruction count, data-segment byte offset, bit 0..8)`, sorted
    /// by instruction count, unique counts.
    flips: Vec<(u64, u32, u8)>,
}

impl MemoryFaultPlan {
    /// Samples a plan with `errors` flips at distinct instruction
    /// boundaries uniformly drawn from `1..=instructions`, each targeting
    /// a uniform byte of a `data_len`-byte data segment and a uniform bit
    /// of that byte. Empty when the run or the data segment is empty.
    pub fn sample<R: Rng>(rng: &mut R, instructions: u64, data_len: usize, errors: u64) -> Self {
        if instructions == 0 || data_len == 0 || errors == 0 {
            return MemoryFaultPlan::default();
        }
        let errors = errors.min(instructions);
        let picks = index_sample(rng, instructions as usize, errors as usize);
        let mut flips: Vec<(u64, u32, u8)> = picks
            .into_iter()
            .map(|p| {
                (
                    p as u64 + 1,
                    rng.gen_range(0..data_len) as u32,
                    rng.gen_range(0..8u8),
                )
            })
            .collect();
        flips.sort_unstable_by_key(|&(at, _, _)| at);
        MemoryFaultPlan { flips }
    }

    /// Builds a plan from explicit `(instruction count, offset, bit)`
    /// triples (tests and targeted experiments); duplicated counts keep
    /// the last triple.
    #[must_use]
    pub fn from_triples(triples: &[(u64, u32, u8)]) -> Self {
        let mut flips = triples.to_vec();
        flips.reverse();
        flips.sort_by_key(|&(at, _, _)| at);
        flips.dedup_by_key(|&mut (at, _, _)| at);
        MemoryFaultPlan { flips }
    }

    /// Number of planned flips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// Whether the plan contains no flips.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// The planned `(instruction count, offset, bit)` triples, sorted by
    /// instruction count.
    #[must_use]
    pub fn triples(&self) -> &[(u64, u32, u8)] {
        &self.flips
    }

    /// The earliest flip boundary, or `None` for an empty plan. The
    /// campaign restores each trial from the latest checkpoint at or
    /// before this instruction count.
    #[must_use]
    pub fn earliest_injection(&self) -> Option<u64> {
        self.flips.first().map(|&(at, _, _)| at)
    }

    /// The latest flip boundary, or `None` for an empty plan.
    /// Reconvergence probing starts past this point.
    #[must_use]
    pub fn latest_injection(&self) -> Option<u64> {
        self.flips.last().map(|&(at, _, _)| at)
    }
}

/// One row of the regime matrix: the verdict distribution of a campaign
/// of one workload under one `(target, regime)` cell, with Wilson 95%
/// confidence intervals per bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceProfile {
    /// Workload name.
    pub workload: String,
    /// Protection regime of the campaign.
    pub regime: Protection,
    /// Fault target of the campaign.
    pub target: FaultTarget,
    /// Errors injected per trial.
    pub errors: u64,
    /// Verdict counts over every scheduled trial.
    pub counts: VerdictCounts,
}

impl ToleranceProfile {
    /// Wilson 95% interval of `count / total` trials (`(0, 1)` for an
    /// empty campaign — no evidence constrains the proportion).
    #[must_use]
    pub fn ci95(&self, count: usize) -> (f64, f64) {
        proportion_ci95(count, self.counts.total())
    }

    /// `(label, count, (ci_lo, ci_hi))` rows in taxonomy order.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, usize, (f64, f64))> {
        self.counts
            .labeled()
            .iter()
            .map(|&(label, count)| (label, count, self.ci95(count)))
            .collect()
    }

    /// Serializes this row as a JSON object (stable key order, fixed
    /// float precision — byte-deterministic for a fixed seed).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"workload\":\"{}\",\"target\":\"{}\",\"regime\":\"{}\",\"errors\":{},\"trials\":{}",
            self.workload,
            self.target.label(),
            self.regime.label(),
            self.errors,
            self.counts.total()
        );
        for (label, count, (lo, hi)) in self.rows() {
            let _ = write!(
                out,
                ",\"{label}\":{count},\"{label}_ci\":[{lo:.6},{hi:.6}]"
            );
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn regime_labels_are_stable() {
        let labels: Vec<&str> = Protection::all().iter().map(|r| r.label()).collect();
        assert_eq!(labels, ["none", "control_only", "data_only", "full"]);
        assert_eq!(FaultTarget::Registers.label(), "registers");
        assert_eq!(FaultTarget::MemoryCells.label(), "memory_cells");
    }

    #[test]
    fn memory_plan_sampling_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        let plan = MemoryFaultPlan::sample(&mut rng, 1000, 64, 10);
        assert_eq!(plan.len(), 10);
        for &(at, off, bit) in plan.triples() {
            assert!((1..=1000).contains(&at));
            assert!(off < 64);
            assert!(bit < 8);
        }
        assert!(plan.triples().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(plan.earliest_injection(), Some(plan.triples()[0].0));
        assert_eq!(
            plan.latest_injection(),
            Some(plan.triples()[plan.len() - 1].0)
        );
        assert!(MemoryFaultPlan::sample(&mut rng, 0, 64, 3).is_empty());
        assert!(MemoryFaultPlan::sample(&mut rng, 100, 0, 3).is_empty());
        assert!(MemoryFaultPlan::sample(&mut rng, 100, 64, 0).is_empty());
        assert_eq!(
            MemoryFaultPlan::sample(&mut SmallRng::seed_from_u64(4), 3, 8, 10).len(),
            3,
            "errors capped at the boundary population"
        );
    }

    #[test]
    fn memory_plan_sampling_is_deterministic() {
        let a = MemoryFaultPlan::sample(&mut SmallRng::seed_from_u64(9), 500, 32, 5);
        let b = MemoryFaultPlan::sample(&mut SmallRng::seed_from_u64(9), 500, 32, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn from_triples_sorts_and_last_duplicate_wins() {
        let plan = MemoryFaultPlan::from_triples(&[(9, 1, 1), (2, 5, 0), (9, 7, 3)]);
        assert_eq!(plan.triples(), &[(2, 5, 0), (9, 7, 3)]);
    }

    #[test]
    fn tolerance_profile_rows_and_json() {
        let counts = VerdictCounts {
            masked: 3,
            detected_crash: 1,
            ..Default::default()
        };
        let p = ToleranceProfile {
            workload: "sum".into(),
            regime: Protection::ControlOnly,
            target: FaultTarget::Registers,
            errors: 2,
            counts,
        };
        let rows = p.rows();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0], ("masked", 3, proportion_ci95(3, 4)));
        let json = p.to_json();
        assert!(json.contains("\"regime\":\"control_only\""));
        assert!(json.contains("\"masked\":3"));
        assert!(json.contains("\"masked_ci\":["));
        assert!(json.contains("\"trials\":4"));
        // Deterministic serialization.
        assert_eq!(json, p.to_json());
    }
}

//! The predecode layer: lowering [`certa_isa::Instr`] into a dense,
//! operand-resolved micro-op array the dispatch loop can execute without
//! re-extracting enum payloads on every dynamic instruction.
//!
//! # Lowering
//!
//! [`DecodedProgram::new`] walks the instruction stream once and produces
//! one [`MicroOp`] per instruction:
//!
//! * register operands become raw `u8` indices (no newtype unwrapping in
//!   the hot loop),
//! * branch/jump/call targets and memory offsets live in one `i32`
//!   immediate slot,
//! * sub-operation selectors (ALU op, access width, sign extension, branch
//!   condition, FPU op) are folded into the opcode byte itself, so dispatch
//!   is a single flat match,
//! * `f64` immediates are spilled to a constant pool ([`MicroOp::imm`]
//!   indexes it), keeping every micro-op a fixed 12 bytes.
//!
//! The array is strictly 1:1 with `Program::code`: micro-op `i` is
//! instruction `i`, so the architectural `pc`, branch targets, profiling
//! indices, and [`WritebackHook`](crate::WritebackHook) instruction indices
//! are unchanged by predecoding.
//!
//! # Fusion
//!
//! A second pass marks **fused pair heads**: any instruction that can fall
//! through ([`certa_isa::Instr::can_fall_through`]) to an existing
//! successor. When the head actually does fall through at runtime, the
//! dispatch loop retires its successor in the same iteration, skipping one
//! fetch/bounds-check/loop-latch round trip.
//!
//! The assembler's common idioms — compare + branch, address compute +
//! load/store, `li` + ALU — are the pairs this hits on every loop
//! iteration, and in straight-line bodies nearly every instruction is
//! covered.
//!
//! Because the array stays 1:1, fusion needs no branch-target analysis: a
//! dynamic jump landing on the *second* half of a pair simply executes that
//! slot's ordinary micro-op. The invariants fusion must preserve (and that
//! the differential suite checks) are:
//!
//! * both halves bump `icount` and per-instruction `exec_counts`
//!   individually,
//! * every intermediate writeback — including the head's — flows through
//!   the [`WritebackHook`](crate::WritebackHook), so fault-injection sites
//!   are unchanged,
//! * the second half only retires when the head *fell through* — a taken
//!   branch, crash, or halt in the head ends the iteration exactly as
//!   unfused execution would,
//! * a pair never straddles a watchdog or [`run_until`]
//!   boundary: when the second half would cross it, the head executes
//!   alone as an ordinary micro-op.
//!
//! # Superblocks
//!
//! A third pass derives a **superblock table** from the program's control
//! flow graph ([`certa_core::Cfg`]): for each basic-block entry, a
//! straight-line *trace* of micro-ops is laid out by following fall-through
//! edges and unconditional jumps across block boundaries, with conditional
//! branches embedded as **side-exit guards** (taken → leave the trace) and
//! calls/indirect jumps/halts terminating it. The dispatch loop executes a
//! whole trace with watchdog/pause checks hoisted to the trace boundary —
//! see [`crate::Machine::run`] — falling back to fused per-op dispatch for
//! cold blocks and mid-block entry points (e.g. resuming from a snapshot
//! taken mid-trace).
//!
//! Each trace element carries its original instruction index, so `pc`,
//! `icount`, `exec_counts`, and hook indices remain exactly 1:1 with the
//! reference interpreter. A [`SuperblockPolicy`] decides which block
//! entries earn a trace: by static trace length, or seeded with
//! `exec_counts` from a profiled run so only blocks the golden run actually
//! executed get bodies (the fault campaign uses this for trial machines).
//!
//! [`run_until`]: crate::Machine::run_until

use certa_core::Cfg;
use certa_isa::{AluOp, BranchKind, CmpOp, FCmpOp, FpuOp, Instr, MemWidth, Program};

/// Micro-op opcode with every sub-operation selector folded in.
///
/// The dispatch loop matches each variant with its own arm; the ALU block
/// is laid out contiguously in [`AluOp::ALL`] order (register-register
/// forms first, then register-immediate) purely as a reading aid, with a
/// unit test pinning the correspondence.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MOp {
    // 0..=15: register-register ALU, in AluOp::ALL order.
    AddRR = 0,
    SubRR,
    MulRR,
    DivRR,
    RemRR,
    DivuRR,
    RemuRR,
    AndRR,
    OrRR,
    XorRR,
    NorRR,
    SllRR,
    SrlRR,
    SraRR,
    SltRR,
    SltuRR,
    // 16..=31: register-immediate ALU, in AluOp::ALL order.
    AddRI,
    SubRI,
    MulRI,
    DivRI,
    RemRI,
    DivuRI,
    RemuRI,
    AndRI,
    OrRI,
    XorRI,
    NorRI,
    SllRI,
    SrlRI,
    SraRI,
    SltRI,
    SltuRI,
    /// `a = imm`.
    Li,
    /// Sign-extending byte load: `a = sx8(mem[rb + imm])`.
    Lb,
    /// Zero-extending byte load.
    Lbu,
    /// Sign-extending halfword load.
    Lh,
    /// Zero-extending halfword load.
    Lhu,
    /// Word load.
    Lw,
    /// Byte store: `mem[rb + imm] = ra`.
    Sb,
    /// Halfword store.
    Sh,
    /// Word store.
    Sw,
    /// Branch to `imm` if `ra == rb`.
    Beq,
    /// Branch if `ra != rb`.
    Bne,
    /// Branch if `ra < rb` (signed).
    Blt,
    /// Branch if `ra >= rb` (signed).
    Bge,
    /// Branch if `ra < rb` (unsigned).
    Bltu,
    /// Branch if `ra >= rb` (unsigned).
    Bgeu,
    /// Unconditional jump to `imm`.
    Jump,
    /// Call: `$ra = pc + 1`, jump to `imm` (`a` carries the RA index).
    Call,
    /// Indirect jump to the value of register `a`.
    JumpReg,
    /// `fa = fb + fc`.
    FAdd,
    /// `fa = fb - fc`.
    FSub,
    /// `fa = fb * fc`.
    FMul,
    /// `fa = fb / fc`.
    FDiv,
    /// `fa = min(fb, fc)`.
    FMin,
    /// `fa = max(fb, fc)`.
    FMax,
    /// `fa = fb`.
    FMov,
    /// `fa = |fb|`.
    FAbs,
    /// `fa = -fb`.
    FNeg,
    /// `fa = sqrt(fb)`.
    FSqrt,
    /// `fa = fpool[imm]`.
    FLi,
    /// `fa = mem_f64[rb + imm]`.
    FLd,
    /// `mem_f64[rb + imm] = fa`.
    FSd,
    /// `fa = rb as i32 as f64`.
    CvtIF,
    /// `a = fb as i32` (truncating, saturating).
    CvtFI,
    /// `a = (fb == fc) as u32`.
    FCeq,
    /// `a = (fb < fc) as u32`.
    FClt,
    /// `a = (fb <= fc) as u32`.
    FCle,
    /// Stop successfully.
    Halt,
    /// No operation.
    Nop,
}

/// One predecoded instruction: folded opcode, raw register indices, one
/// immediate. 12 bytes, `Copy`, fetched as a unit by the dispatch loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    /// Folded opcode.
    pub(crate) op: MOp,
    /// Non-zero when this op heads a fused pair (see the module docs); the
    /// second half is always the micro-op at the next index.
    pub(crate) fuse: u8,
    /// First register field (destination, store source, or branch lhs).
    pub(crate) a: u8,
    /// Second register field (source / base / branch rhs).
    pub(crate) b: u8,
    /// Third register field (second ALU/FPU source).
    pub(crate) c: u8,
    /// Immediate: ALU immediate, memory offset, branch/jump target, or
    /// `f64` constant-pool index.
    pub(crate) imm: i32,
}

impl MicroOp {
    fn new(op: MOp) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a: 0,
            b: 0,
            c: 0,
            imm: 0,
        }
    }

    fn regs(op: MOp, a: u8, b: u8, c: u8) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a,
            b,
            c,
            imm: 0,
        }
    }

    fn imm(op: MOp, a: u8, b: u8, imm: i32) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a,
            b,
            c: 0,
            imm,
        }
    }
}

/// Combo tag: no second op — the element executes `op` alone.
pub(crate) const COMBO_NONE: u8 = 0;
/// Combo tag: two ALU/`li` ops retired by one dispatch.
pub(crate) const COMBO_ALU_ALU: u8 = 1;
/// Combo tag: ALU/`li` feeding (or preceding) an integer load.
pub(crate) const COMBO_ALU_LOAD: u8 = 2;
/// Combo tag: integer load followed by an ALU/`li` op.
pub(crate) const COMBO_LOAD_ALU: u8 = 3;
/// Combo tag: ALU/`li` followed by a conditional branch.
pub(crate) const COMBO_ALU_BRANCH: u8 = 4;
/// Combo tag: ALU/`li` followed by an integer store.
pub(crate) const COMBO_ALU_STORE: u8 = 5;
/// Combo tag: integer store followed by an ALU/`li` op.
pub(crate) const COMBO_STORE_ALU: u8 = 6;
/// Combo tag: two adjacent integer stores (struct/field writes).
pub(crate) const COMBO_STORE_STORE: u8 = 7;
/// Combo tag: the catch-all pair — any micro-op that always falls through
/// (or crashes) followed by any successor, each dispatched through the
/// full single-op executor. Guarantees the trace tier never retires fewer
/// instructions per dispatch than the fused tier's dynamic pairing, even
/// on shapes (FPU arithmetic, conversions, mixed float/int) the classed
/// and specialized arms do not cover.
pub(crate) const COMBO_ANY_ANY: u8 = 43;

// ---------------------------------------------------------------------
// Specialized chain tags.
//
// The generic combo arms above still pay one inner jump table per half
// (`AluOp::ALL[discriminant]`, load width, branch condition). The tags
// below are **constant-folded specializations** of the concrete 2- and
// 3-op sequences that dominate the dynamic chain census (see
// [`chain_census`]): each tag has a dedicated straight-line handler in
// `machine.rs` with the operation, operand form, width, and condition
// fixed at compile time — registers resolved at decode time, no inner
// dispatch of any kind. Micro-op fields are stored verbatim for pairs;
// the two triple tags re-pack fields (layouts documented at the match
// arms in [`specialize_triple`]).
// ---------------------------------------------------------------------

/// First specialized tag (everything `>=` this is a specialized chain).
pub(crate) const CH_FIRST: u8 = 8;
/// `sllri + addrr` (the top half of the address-generation chain).
pub(crate) const CH_SLLI_ADD: u8 = 8;
/// `addrr + addrr`.
pub(crate) const CH_ADD_ADD: u8 = 9;
/// `addri + sltri` (loop-latch compare half).
pub(crate) const CH_ADDI_SLTI: u8 = 10;
/// `subrr + srari`.
pub(crate) const CH_SUB_SRAI: u8 = 11;
/// `srari + xorrr`.
pub(crate) const CH_SRAI_XOR: u8 = 12;
/// `xorrr + subrr`.
pub(crate) const CH_XOR_SUB: u8 = 13;
/// `sltri + addrr`.
pub(crate) const CH_SLTI_ADD: u8 = 14;
/// `addrr + addri`.
pub(crate) const CH_ADD_ADDI: u8 = 15;
/// `mulri + addrr`.
pub(crate) const CH_MULI_ADD: u8 = 16;
/// `andri + sllri`.
pub(crate) const CH_ANDI_SLLI: u8 = 17;
/// `addrr + lw` (address compute feeding a word load).
pub(crate) const CH_ADD_LW: u8 = 18;
/// `addri + lw`.
pub(crate) const CH_ADDI_LW: u8 = 19;
/// `addrr + lbu`.
pub(crate) const CH_ADD_LBU: u8 = 20;
/// `lw + addrr`.
pub(crate) const CH_LW_ADD: u8 = 21;
/// `lw + addri`.
pub(crate) const CH_LW_ADDI: u8 = 22;
/// `lbu + subrr`.
pub(crate) const CH_LBU_SUB: u8 = 23;
/// `lw + sllri`.
pub(crate) const CH_LW_SLLI: u8 = 24;
/// `sltri + bne` (compare + conditional branch).
pub(crate) const CH_SLTI_BNE: u8 = 25;
/// `lw + beq` (a load/branch shape the generic combos do not cover).
pub(crate) const CH_LW_BEQ: u8 = 26;
/// `subrr + addrr`.
pub(crate) const CH_SUB_ADD: u8 = 27;
/// `addrr + subrr`.
pub(crate) const CH_ADD_SUB: u8 = 28;
/// `subrr + subrr`.
pub(crate) const CH_SUB_SUB: u8 = 29;
/// `lw + lw`.
pub(crate) const CH_LW_LW: u8 = 30;
/// `sw + sw`.
pub(crate) const CH_SW_SW: u8 = 31;
/// `lbu + addrr`.
pub(crate) const CH_LBU_ADD: u8 = 32;
/// `addri + addrr`.
pub(crate) const CH_ADDI_ADD: u8 = 33;
/// `addrr + srari`.
pub(crate) const CH_ADD_SRAI: u8 = 34;
/// `mulrr + addrr`.
pub(crate) const CH_MUL_ADD: u8 = 35;
/// `subrr + mulrr`.
pub(crate) const CH_SUB_MUL: u8 = 36;
/// `sltrr + subrr`.
pub(crate) const CH_SLT_SUB: u8 = 37;
/// `li/addri + sltrr`.
pub(crate) const CH_ADDI_SLT: u8 = 38;
/// `orrr + orrr`.
pub(crate) const CH_OR_OR: u8 = 39;
/// `lw + xorrr`.
pub(crate) const CH_LW_XOR: u8 = 40;
/// `srlri + andri`.
pub(crate) const CH_SRLI_ANDI: u8 = 41;
/// `mulri + subrr`.
pub(crate) const CH_MULI_SUB: u8 = 42;
/// `fadd + addri` (float accumulate + induction bump).
pub(crate) const CH_FADD_ADDI: u8 = 44;
/// `fmul + fadd` (multiply-accumulate halves).
pub(crate) const CH_FMUL_FADD: u8 = 45;
/// `fadd + fadd`.
pub(crate) const CH_FADD_FADD: u8 = 46;
/// `addrr + fld` (address compute feeding an `f64` load).
pub(crate) const CH_ADD_FLD: u8 = 47;
/// `fld + fmul`.
pub(crate) const CH_FLD_FMUL: u8 = 48;
/// `addri/li + blt`.
pub(crate) const CH_ADDI_BLT: u8 = 49;
/// `mulri + mulri`.
pub(crate) const CH_MULI_MULI: u8 = 50;
/// `addri + mulri`.
pub(crate) const CH_ADDI_MULI: u8 = 51;
/// `subrr + lbu` (the MPEG clamp-and-fetch idiom).
pub(crate) const CH_SUB_LBU: u8 = 52;
/// `lbu + lbu` (byte gathers).
pub(crate) const CH_LBU_LBU: u8 = 53;
/// `addrr + sllri`.
pub(crate) const CH_ADD_SLLI: u8 = 54;
/// `addrr + sw`.
pub(crate) const CH_ADD_SW: u8 = 55;
/// `mulri + sllri`.
pub(crate) const CH_MULI_SLLI: u8 = 56;
/// `sw + addri`.
pub(crate) const CH_SW_ADDI: u8 = 57;
/// `sltrr + xorri`.
pub(crate) const CH_SLT_XORI: u8 = 58;
/// `mulrr + subrr`.
pub(crate) const CH_MUL_SUB: u8 = 59;
/// First 3-op chain tag (everything `>=` this retires three instructions).
pub(crate) const CH3_FIRST: u8 = 0xF0;
/// `sllri + addrr + lw`: the full address-generation chain (scaled index
/// plus base feeding a word load), the heaviest triple in the census.
pub(crate) const CH3_SLLI_ADD_LW: u8 = 0xF0;
/// `addri + sltri + bne`: the canonical loop latch (induction bump,
/// bound compare, loop-closing branch).
pub(crate) const CH3_ADDI_SLTI_BNE: u8 = 0xF1;
/// `addrr + lw + addrr`: base-plus-index address generation feeding a
/// load whose result the next add consumes (accumulator idiom).
pub(crate) const CH3_ADD_LW_ADD: u8 = 0xF2;
/// `lw + addrr + addrr`: a load whose result feeds a chain of two adds.
pub(crate) const CH3_LW_ADD_ADD: u8 = 0xF3;
/// `andri + sllri + addrr`: mask, scale, and index (the Blowfish S-box
/// address chain).
pub(crate) const CH3_ANDI_SLLI_ADD: u8 = 0xF4;
/// `sllri + addrr + fld`: the address-generation chain feeding an `f64`
/// load (the ART float kernel's hot address shape).
pub(crate) const CH3_SLLI_ADD_FLD: u8 = 0xF5;
/// `lw + lw + lw`: a run of word loads (the MPEG butterfly gathers).
pub(crate) const CH3_LW_LW_LW: u8 = 0xF6;
/// `sw + sw + sw`: a run of word stores (the MPEG butterfly scatters).
pub(crate) const CH3_SW_SW_SW: u8 = 0xF7;
/// `addrr + fld + fmul`: address compute, `f64` load, and the multiply
/// consuming it.
pub(crate) const CH3_ADD_FLD_FMUL: u8 = 0xF8;
/// `fld + fmul + fadd`: the float multiply-accumulate chain.
pub(crate) const CH3_FLD_FMUL_FADD: u8 = 0xF9;
/// `li/addri + sltrr + subrr`: the GSM saturation idiom (bound, compare,
/// conditional-subtract setup).
pub(crate) const CH3_ADDI_SLT_SUB: u8 = 0xFA;

/// One element of a superblock trace: one micro-op — or a **combo pair**
/// of two adjacent micro-ops retired by a single dispatch — plus the
/// instruction indices they were lifted from, so hooks, profiling, and
/// `pc` reconstruction stay 1:1 with the source program. 32 bytes, laid
/// out densely per trace.
///
/// Two bytes are repurposed inside the copied micro-ops:
///
/// * `op.fuse` is the **sequential continuation flag**: non-zero means
///   the next trace element starts at this element's last instruction
///   plus one, so a fall-through retirement stays inside the trace
///   without any bounds or index check.
/// * `op2.fuse` is the **combo tag** (`COMBO_*`): which fused-pair arm
///   executes this element, or [`COMBO_NONE`] for a single op.
///
/// Control transfers use the universal continuation rule instead: the
/// trace continues iff the next element's `at` equals the dynamic target
/// (sound for any linearization — traced-through jumps and call returns
/// compare equal, side exits compare unequal).
///
/// Combo pairs keep per-instruction observability exactly: both halves
/// bump `icount`/`exec_counts` individually, writebacks flow through the
/// hook in program order with their own instruction indices, and a crash
/// in either half reports that half's `pc`. `li` halves are normalized to
/// `addi rd, $zero, imm` so the ALU arms cover them.
#[derive(Debug, Clone, Copy)]
#[repr(align(32))]
pub(crate) struct SuperOp {
    /// First micro-op (`fuse` = sequential continuation flag).
    pub(crate) op: MicroOp,
    /// Original instruction index of `op`.
    pub(crate) at: u32,
    /// Second micro-op of a combo pair (`fuse` = combo tag); `Nop` with
    /// tag [`COMBO_NONE`] for single elements.
    pub(crate) op2: MicroOp,
    /// Original instruction index of `op2` (meaningful only for combos).
    pub(crate) at2: u32,
}

impl SuperOp {
    /// Instruction index the element's fall-through path resumes after:
    /// the last constituent instruction.
    fn last_at(&self) -> u32 {
        if self.op2.fuse == COMBO_NONE {
            self.at
        } else {
            self.at2
        }
    }
}

/// One superblock: a straight-line trace in the shared [`SuperOp`] arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Superblock {
    /// First trace element in the arena.
    pub(crate) start: u32,
    /// Trace length in elements (combo pairs count once).
    pub(crate) elems: u32,
    /// Trace length in **instructions** — the exact upper bound on what
    /// one pass through the trace can retire, which is what the dispatch
    /// loop checks against the watchdog/pause boundary before entering.
    pub(crate) instrs: u32,
}

/// Profitability policy for the superblock pass: which basic-block entries
/// earn a straight-line trace body, and how long traces may grow.
#[derive(Debug, Clone)]
pub struct SuperblockPolicy {
    /// Build superblocks at all (`false` = fused per-op dispatch only; the
    /// benches use this to isolate the superblock tier's contribution).
    pub enable: bool,
    /// Minimum trace length (in micro-ops) worth the block-entry lookup;
    /// shorter traces fall back to fused dispatch.
    pub min_len: usize,
    /// Trace length cap (bounds trace memory and the boundary slack the
    /// dispatch loop must leave before the watchdog/pause target).
    pub max_len: usize,
    /// Optional per-instruction execution counts from a profiled run
    /// (e.g. the campaign's golden run): when present, only block entries
    /// with at least [`SuperblockPolicy::hot_threshold`] recorded
    /// executions get trace bodies.
    pub hot_counts: Option<Vec<u64>>,
    /// Minimum entry execution count for [`SuperblockPolicy::hot_counts`]
    /// seeding.
    pub hot_threshold: u64,
}

impl Default for SuperblockPolicy {
    fn default() -> Self {
        SuperblockPolicy {
            enable: true,
            min_len: 2,
            // Long traces pay off once taken-path unrolling keeps hot
            // loops in-trace: 384 measured best on the study workloads
            // (sbtune sweep; short caps truncate unrolled loop laps and
            // fall back to fused dispatch mid-iteration).
            max_len: 384,
            hot_counts: None,
            hot_threshold: 1,
        }
    }
}

impl SuperblockPolicy {
    /// Superblocks off: the decoded program executes purely through the
    /// fused per-op dispatch tier.
    #[must_use]
    pub fn disabled() -> Self {
        SuperblockPolicy {
            enable: false,
            ..SuperblockPolicy::default()
        }
    }

    /// Profile-seeded policy: only basic blocks whose entry instruction
    /// executed at least once in `exec_counts` get trace bodies. The fault
    /// campaign seeds trial machines with the golden run's counts.
    #[must_use]
    pub fn seeded(exec_counts: Vec<u64>) -> Self {
        SuperblockPolicy {
            hot_counts: Some(exec_counts),
            ..SuperblockPolicy::default()
        }
    }
}

/// A program lowered to the micro-op form the dispatch loop executes: a
/// dense array strictly 1:1 with `Program::code`, the `f64` constant
/// pool, and the superblock trace table. Immutable once built; cheap to
/// share across trial machines via [`std::sync::Arc`] (the fault campaign
/// decodes once per campaign).
#[derive(Debug)]
pub struct DecodedProgram {
    ops: Vec<MicroOp>,
    fpool: Vec<f64>,
    fused_pairs: usize,
    /// Superblock descriptors; `sb_entry[pc]` holds `id + 1`.
    superblocks: Vec<Superblock>,
    /// Shared trace arena, indexed by [`Superblock::start`]/`len`.
    sb_ops: Vec<SuperOp>,
    /// Per-instruction superblock entry map: `0` = no trace starts here,
    /// else the superblock id plus one. Only basic-block entry points are
    /// ever non-zero.
    sb_entry: Vec<u32>,
    /// Trace elements carrying a specialized chain tag (diagnostics).
    sb_specialized: usize,
}

impl DecodedProgram {
    /// Lowers `program` with the default [`SuperblockPolicy`] (decode pass
    /// + fusion pass + CFG-derived superblock pass).
    #[must_use]
    pub fn new(program: &Program) -> Self {
        Self::with_policy(program, &SuperblockPolicy::default())
    }

    /// Lowers `program` with an explicit superblock policy.
    #[must_use]
    pub fn with_policy(program: &Program, policy: &SuperblockPolicy) -> Self {
        let mut fpool = Vec::new();
        let mut ops: Vec<MicroOp> = program
            .code
            .iter()
            .map(|instr| decode_instr(instr, &mut fpool))
            .collect();

        // Fusion pass: mark every op that can fall through to an existing
        // successor as a pair head. The dispatch loop retires the successor
        // in the same iteration whenever the head actually fell through.
        let mut fused_pairs = 0;
        for i in 0..ops.len().saturating_sub(1) {
            if program.code[i].can_fall_through() {
                ops[i].fuse = 1;
                fused_pairs += 1;
            }
        }
        let (superblocks, sb_ops, sb_entry) = build_superblocks(program, &ops, policy);
        let sb_specialized = sb_ops
            .iter()
            .filter(|s| s.op2.fuse >= CH_FIRST && s.op2.fuse != COMBO_ANY_ANY)
            .count();
        DecodedProgram {
            ops,
            fpool,
            fused_pairs,
            superblocks,
            sb_ops,
            sb_entry,
            sb_specialized,
        }
    }

    /// Number of micro-ops (equal to the source program's code length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of static fused pair heads (diagnostics and benches).
    #[must_use]
    pub fn fused_pairs(&self) -> usize {
        self.fused_pairs
    }

    /// Number of superblock trace bodies (diagnostics and benches).
    #[must_use]
    pub fn superblock_count(&self) -> usize {
        self.superblocks.len()
    }

    /// Total micro-ops across all superblock traces (diagnostics; traces
    /// overlap, so this can exceed [`DecodedProgram::len`]).
    #[must_use]
    pub fn superblock_ops(&self) -> usize {
        self.sb_ops.len()
    }

    /// Trace elements executed by a specialized chain handler — a
    /// census-dominant concrete 2- or 3-op sequence with its own
    /// straight-line arm in the trace executor (diagnostics; lets the
    /// tuning harness and tests verify specialization actually fires).
    #[must_use]
    pub fn superblock_specialized(&self) -> usize {
        self.sb_specialized
    }

    pub(crate) fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    pub(crate) fn fpool(&self) -> &[f64] {
        &self.fpool
    }

    pub(crate) fn superblocks(&self) -> &[Superblock] {
        &self.superblocks
    }

    pub(crate) fn sb_ops(&self) -> &[SuperOp] {
        &self.sb_ops
    }

    pub(crate) fn sb_entry(&self) -> &[u32] {
        &self.sb_entry
    }

    /// Trace-element mix: how many elements execute through each combo
    /// class or specialized chain arm, optionally weighted by per-head
    /// execution counts from a profiled run (diagnostics for the tuning
    /// harness: the heaviest *generic* rows are the next specialization
    /// candidates). Sorted heaviest first.
    #[must_use]
    pub fn element_mix(&self, exec_counts: Option<&[u64]>) -> Vec<(String, u64)> {
        let mut mix: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for s in &self.sb_ops {
            let weight =
                exec_counts.map_or(1, |c| c.get(s.at as usize).copied().unwrap_or(0));
            if weight == 0 {
                continue;
            }
            let name = match s.op2.fuse {
                COMBO_NONE => format!("single:{}", mop_name(s.op.op)),
                COMBO_ALU_ALU | COMBO_ALU_LOAD | COMBO_LOAD_ALU | COMBO_ALU_BRANCH
                | COMBO_ALU_STORE | COMBO_STORE_ALU | COMBO_STORE_STORE => {
                    format!("generic:{}+{}", mop_name(s.op.op), mop_name(s.op2.op))
                }
                COMBO_ANY_ANY => {
                    format!("any:{}+{}", mop_name(s.op.op), mop_name(s.op2.op))
                }
                tag => format!("chain:{tag}"),
            };
            *mix.entry(name).or_default() += weight;
        }
        let mut out: Vec<(String, u64)> = mix.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Lowercase display name of a micro-op for census reporting
/// (`AddRI` → `addri`).
fn mop_name(op: MOp) -> String {
    format!("{op:?}").to_lowercase()
}

/// Dynamic-count-weighted census of concrete 2- and 3-op sequences: every
/// fall-through-adjacent opcode pair (and triple) in the instruction
/// stream, keyed by the concrete micro-op names joined with `+`, weighted
/// by the *minimum* execution count across the members when `counts` are
/// given (approximating how often the whole chain retires together) and by
/// static occurrence otherwise. Sorted by weight, heaviest first.
///
/// This is the measurement that decides which chains earn dedicated
/// specialized handlers (see the `CH_*` tags): the top entries on the
/// study workloads are the address-generation chains (`sllri+addrr+lw`,
/// `addri+lw`, `lw+addri`) and compare+branch — exactly the shapes the
/// specialized arms cover.
#[must_use]
pub fn chain_census(program: &Program, counts: Option<&[u64]>) -> Vec<(String, u64)> {
    let mut fpool = Vec::new();
    let ops: Vec<MicroOp> = program
        .code
        .iter()
        .map(|instr| decode_instr(instr, &mut fpool))
        .collect();
    let weight_of = |i: usize| counts.map_or(1, |c| c.get(i).copied().unwrap_or(0));
    let mut census: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for i in 0..ops.len() {
        if !program.code[i].can_fall_through() || i + 1 >= ops.len() {
            continue;
        }
        let w2 = weight_of(i).min(weight_of(i + 1));
        if w2 > 0 {
            *census
                .entry(format!("{}+{}", mop_name(ops[i].op), mop_name(ops[i + 1].op)))
                .or_default() += w2;
        }
        if program.code[i + 1].can_fall_through() && i + 2 < ops.len() {
            let w3 = w2.min(weight_of(i + 2));
            if w3 > 0 {
                *census
                    .entry(format!(
                        "{}+{}+{}",
                        mop_name(ops[i].op),
                        mop_name(ops[i + 1].op),
                        mop_name(ops[i + 2].op)
                    ))
                    .or_default() += w3;
            }
        }
    }
    let mut out: Vec<(String, u64)> = census.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// The superblock pass: walks the [`Cfg`] and lays out one straight-line
/// trace per profitable basic-block entry. Traces follow fall-through
/// edges and unconditional jumps, embed conditional branches as side
/// exits, trace **through calls** into the callee (laying the call site's
/// return point after the callee's `jr`, so a well-behaved return
/// continues in-trace — the dispatch loop's dynamic-target comparison
/// side-exits if the return address was corrupted), and stop at indirect
/// jumps with no pending return point, halts, code end, the length cap, or
/// the first revisited block (which bounds every trace even for `j self`
/// loops).
#[allow(clippy::cast_possible_truncation)]
fn build_superblocks(
    program: &Program,
    ops: &[MicroOp],
    policy: &SuperblockPolicy,
) -> (Vec<Superblock>, Vec<SuperOp>, Vec<u32>) {
    let n = ops.len();
    let mut sb_entry = vec![0u32; n];
    if !policy.enable || n == 0 {
        return (Vec::new(), Vec::new(), sb_entry);
    }
    let cfg = Cfg::build(program);
    let min_len = policy.min_len.max(1);
    let mut superblocks: Vec<Superblock> = Vec::new();
    let mut sb_ops: Vec<SuperOp> = Vec::new();
    // Generation-stamped visited set: `visited[b] == seed` means block
    // `b` is already part of the trace currently being built. The stamps
    // gate only the *pre-loop* portion of a trace — once taken-path
    // unrolling starts, laps repeat blocks freely and the length cap is
    // what terminates the builder (every lap pushes at least one op).
    let mut visited = vec![usize::MAX; cfg.len()];
    let mut trace: Vec<(MicroOp, u32)> = Vec::with_capacity(policy.max_len);
    for seed in 0..cfg.len() {
        let entry = cfg.blocks[seed].start;
        if let Some(counts) = &policy.hot_counts {
            if counts.get(entry).copied().unwrap_or(0) < policy.hot_threshold {
                continue;
            }
        }
        trace.clear();
        let mut cur = seed;
        // Set once the trace follows a loop-closing branch's *taken* path:
        // from then on the trace is unrolling loop iterations, and only
        // the length cap bounds it.
        let mut unrolling = false;
        // Trace length at the end of the last complete unrolled lap
        // (just after a taken back-edge branch was laid): when the cap
        // lands mid-lap, the trace is cut back here so it ends at the
        // loop latch — the taken continuation then re-enters the trace at
        // the header instead of falling out mid-iteration into fused
        // dispatch.
        let mut lap_end = 0usize;
        // Return points of calls traced through, innermost last: when the
        // callee's `jr` retires, the trace resumes at the block after the
        // call site (the dispatch loop verifies the dynamic target).
        let mut ret_stack: Vec<usize> = Vec::new();
        'trace: loop {
            if !unrolling {
                if visited[cur] == seed {
                    break 'trace;
                }
                visited[cur] = seed;
            }
            let block = &cfg.blocks[cur];
            for (i, &op) in ops.iter().enumerate().take(block.end).skip(block.start) {
                if trace.len() >= policy.max_len {
                    if lap_end > 0 {
                        trace.truncate(lap_end);
                    }
                    break 'trace;
                }
                trace.push((op, i as u32));
            }
            let last = block.end - 1;
            cur = match program.code[last].branch_kind() {
                // A loop-closing conditional branch (a natural-loop back
                // edge) is linearized along its **taken** path: the
                // backward target is laid next, unrolling the loop, so
                // hot iterations continue in-trace instead of
                // side-exiting every iteration. (Legal under the dispatch
                // loop's universal dynamic-target continuation rule:
                // not-taken simply side-exits at `last + 1`.) Other
                // conditionals keep the fall-through bias.
                BranchKind::Conditional { .. }
                    if cfg
                        .static_target_succ(cur, program)
                        .is_some_and(|t| cfg.is_back_edge(cur, t)) =>
                {
                    unrolling = true;
                    lap_end = trace.len();
                    match cfg.static_target_succ(cur, program) {
                        Some(next) => next,
                        None => break 'trace,
                    }
                }
                // Straight-line and not-taken conditional paths continue
                // at the textual successor block.
                BranchKind::FallThrough | BranchKind::Conditional { .. } => {
                    match cfg.fallthrough_succ(cur, program) {
                        Some(next) => next,
                        None => break 'trace,
                    }
                }
                // Unconditional jumps are traced through: the jump retires
                // inside the trace and execution continues at its target.
                BranchKind::Jump { .. } => match cfg.static_target_succ(cur, program) {
                    Some(next) => next,
                    None => break 'trace,
                },
                // Calls are traced into the callee; remember where a
                // matching return should resume.
                BranchKind::Call { .. } => {
                    if last + 1 < n {
                        ret_stack.push(cfg.block_of(last + 1));
                    }
                    match cfg.static_target_succ(cur, program) {
                        Some(next) => next,
                        None => break 'trace,
                    }
                }
                // An indirect jump closes the innermost traced call (the
                // guest's return idiom); with no pending call it ends the
                // trace.
                BranchKind::Indirect => match ret_stack.pop() {
                    Some(next) => next,
                    None => break 'trace,
                },
                BranchKind::Halt => break 'trace,
            };
        }
        if trace.len() < min_len {
            continue;
        }
        let start = sb_ops.len();
        pair_trace(&trace, &mut sb_ops);
        // Sequential-continuation post-pass: an element's `op.fuse` is set
        // iff the next element resumes at this element's last instruction
        // plus one, so fall-through retirements continue in-trace without
        // an index comparison. The final element always exits.
        for k in start..sb_ops.len() {
            let seq = sb_ops
                .get(k + 1)
                .is_some_and(|next| next.at == sb_ops[k].last_at() + 1);
            sb_ops[k].op.fuse = u8::from(seq);
        }
        let id = u32::try_from(superblocks.len()).expect("superblock count fits u32");
        superblocks.push(Superblock {
            start: u32::try_from(start).expect("trace arena fits u32"),
            elems: (sb_ops.len() - start) as u32,
            instrs: trace.len() as u32,
        });
        sb_entry[entry] = id + 1;
    }
    (superblocks, sb_ops, sb_entry)
}

/// Whether a micro-op is an integer ALU form (register-register or
/// register-immediate; the first 32 discriminants).
fn is_alu(op: MOp) -> bool {
    (op as u8) < 32
}

/// Whether a micro-op is an integer load.
fn is_load(op: MOp) -> bool {
    matches!(op, MOp::Lb | MOp::Lbu | MOp::Lh | MOp::Lhu | MOp::Lw)
}

/// Whether a micro-op is an integer store.
fn is_store(op: MOp) -> bool {
    matches!(op, MOp::Sb | MOp::Sh | MOp::Sw)
}

/// Whether a micro-op's only control-flow effects are falling through or
/// crashing — the head condition for the [`COMBO_ANY_ANY`] catch-all pair
/// (a taken transfer in the head would have to skip the second half).
fn always_falls_through(op: MOp) -> bool {
    !matches!(
        op,
        MOp::Beq
            | MOp::Bne
            | MOp::Blt
            | MOp::Bge
            | MOp::Bltu
            | MOp::Bgeu
            | MOp::Jump
            | MOp::Call
            | MOp::JumpReg
            | MOp::Halt
    )
}

/// Whether a micro-op is a conditional branch.
fn is_branch(op: MOp) -> bool {
    matches!(
        op,
        MOp::Beq | MOp::Bne | MOp::Blt | MOp::Bge | MOp::Bltu | MOp::Bgeu
    )
}

/// Normalizes `li rd, imm` to `addi rd, $zero, imm` so the generic ALU
/// combo arms cover it (reading `$zero` yields 0, so the result is `imm`
/// bit-for-bit, and the writeback path is identical).
fn alu_normalized(m: MicroOp) -> Option<MicroOp> {
    if is_alu(m.op) {
        Some(m)
    } else if m.op == MOp::Li {
        Some(MicroOp {
            op: MOp::AddRI,
            b: 0,
            ..m
        })
    } else {
        None
    }
}

/// Specialized-pair matcher: the concrete opcode pairs the census shows
/// dominate, after `li` normalization. Micro-op fields pass through
/// verbatim (the specialized handlers read the same layout the generic
/// arms would).
fn specialize_pair(m1: MicroOp, m2: MicroOp) -> Option<(u8, MicroOp, MicroOp)> {
    let n1 = alu_normalized(m1).unwrap_or(m1);
    let n2 = alu_normalized(m2).unwrap_or(m2);
    let tag = match (n1.op, n2.op) {
        (MOp::SllRI, MOp::AddRR) => CH_SLLI_ADD,
        (MOp::AddRR, MOp::AddRR) => CH_ADD_ADD,
        (MOp::AddRI, MOp::SltRI) => CH_ADDI_SLTI,
        (MOp::SubRR, MOp::SraRI) => CH_SUB_SRAI,
        (MOp::SraRI, MOp::XorRR) => CH_SRAI_XOR,
        (MOp::XorRR, MOp::SubRR) => CH_XOR_SUB,
        (MOp::SltRI, MOp::AddRR) => CH_SLTI_ADD,
        (MOp::AddRR, MOp::AddRI) => CH_ADD_ADDI,
        (MOp::MulRI, MOp::AddRR) => CH_MULI_ADD,
        (MOp::AndRI, MOp::SllRI) => CH_ANDI_SLLI,
        (MOp::AddRR, MOp::Lw) => CH_ADD_LW,
        (MOp::AddRI, MOp::Lw) => CH_ADDI_LW,
        (MOp::AddRR, MOp::Lbu) => CH_ADD_LBU,
        (MOp::Lw, MOp::AddRR) => CH_LW_ADD,
        (MOp::Lw, MOp::AddRI) => CH_LW_ADDI,
        (MOp::Lbu, MOp::SubRR) => CH_LBU_SUB,
        (MOp::Lw, MOp::SllRI) => CH_LW_SLLI,
        (MOp::SltRI, MOp::Bne) => CH_SLTI_BNE,
        (MOp::Lw, MOp::Beq) => CH_LW_BEQ,
        (MOp::SubRR, MOp::AddRR) => CH_SUB_ADD,
        (MOp::AddRR, MOp::SubRR) => CH_ADD_SUB,
        (MOp::SubRR, MOp::SubRR) => CH_SUB_SUB,
        (MOp::Lw, MOp::Lw) => CH_LW_LW,
        (MOp::Sw, MOp::Sw) => CH_SW_SW,
        (MOp::Lbu, MOp::AddRR) => CH_LBU_ADD,
        (MOp::AddRI, MOp::AddRR) => CH_ADDI_ADD,
        (MOp::AddRR, MOp::SraRI) => CH_ADD_SRAI,
        (MOp::MulRR, MOp::AddRR) => CH_MUL_ADD,
        (MOp::SubRR, MOp::MulRR) => CH_SUB_MUL,
        (MOp::SltRR, MOp::SubRR) => CH_SLT_SUB,
        (MOp::AddRI, MOp::SltRR) => CH_ADDI_SLT,
        (MOp::OrRR, MOp::OrRR) => CH_OR_OR,
        (MOp::Lw, MOp::XorRR) => CH_LW_XOR,
        (MOp::SrlRI, MOp::AndRI) => CH_SRLI_ANDI,
        (MOp::MulRI, MOp::SubRR) => CH_MULI_SUB,
        (MOp::FAdd, MOp::AddRI) => CH_FADD_ADDI,
        (MOp::FMul, MOp::FAdd) => CH_FMUL_FADD,
        (MOp::FAdd, MOp::FAdd) => CH_FADD_FADD,
        (MOp::AddRR, MOp::FLd) => CH_ADD_FLD,
        (MOp::FLd, MOp::FMul) => CH_FLD_FMUL,
        (MOp::AddRI, MOp::Blt) => CH_ADDI_BLT,
        (MOp::MulRI, MOp::MulRI) => CH_MULI_MULI,
        (MOp::AddRI, MOp::MulRI) => CH_ADDI_MULI,
        (MOp::SubRR, MOp::Lbu) => CH_SUB_LBU,
        (MOp::Lbu, MOp::Lbu) => CH_LBU_LBU,
        (MOp::AddRR, MOp::SllRI) => CH_ADD_SLLI,
        (MOp::AddRR, MOp::Sw) => CH_ADD_SW,
        (MOp::MulRI, MOp::SllRI) => CH_MULI_SLLI,
        (MOp::Sw, MOp::AddRI) => CH_SW_ADDI,
        (MOp::SltRR, MOp::XorRI) => CH_SLT_XORI,
        (MOp::MulRR, MOp::SubRR) => CH_MUL_SUB,
        _ => return None,
    };
    Some((tag, n1, n2))
}

/// Specialized-triple matcher: three *fully sequential* instructions
/// matching a census-dominant chain collapse into one element. Because a
/// [`SuperOp`] only carries two micro-ops, the three ops' fields are
/// re-packed into chain-specific layouts (documented per arm); the match
/// guards enforce the constraints that make the packing lossless.
fn specialize_triple(m1: MicroOp, m2: MicroOp, m3: MicroOp) -> Option<(u8, MicroOp, MicroOp)> {
    let n1 = alu_normalized(m1).unwrap_or(m1);
    let n2 = alu_normalized(m2).unwrap_or(m2);
    let n3 = alu_normalized(m3).unwrap_or(m3);
    // Picks the operand of a commutative consumer that is *not* the
    // producer's destination (normalizing "which side reads the chained
    // value"); `None` when the consumer does not read the produced value.
    let other_operand = |consumer: MicroOp, produced: u8| {
        if consumer.b == produced {
            Some(consumer.c)
        } else if consumer.c == produced {
            Some(consumer.b)
        } else {
            None
        }
    };
    match (n1.op, n2.op, n3.op) {
        // `sllri t,s,sh ; addrr u,x,y ; lw d,off(u)` — the load's base
        // must be the add's destination (the address-generation idiom).
        // Layout: op = {a:t, b:s, c:u, imm:sh}, op2 = {a:x, b:y, c:d, imm:off}.
        (MOp::SllRI, MOp::AddRR, MOp::Lw) if m3.b == n2.a => Some((
            CH3_SLLI_ADD_LW,
            MicroOp {
                op: MOp::SllRI,
                fuse: 0,
                a: n1.a,
                b: n1.b,
                c: n2.a,
                imm: n1.imm,
            },
            MicroOp {
                op: MOp::Lw,
                fuse: 0,
                a: n2.b,
                b: n2.c,
                c: m3.a,
                imm: m3.imm,
            },
        )),
        // `addri a1,b1,i1 ; sltri a2,b2,i2 ; bne s,t,target` — the loop
        // latch. Both ALU immediates must fit i16 (packed into one slot).
        // Layout: op = {a:a1, b:b1, c:a2, imm: i1 & 0xFFFF | i2 << 16},
        //         op2 = {a:b2, b:s, c:t, imm:target}.
        (MOp::AddRI, MOp::SltRI, MOp::Bne)
            if i16::try_from(n1.imm).is_ok() && i16::try_from(n2.imm).is_ok() =>
        {
            Some((
                CH3_ADDI_SLTI_BNE,
                MicroOp {
                    op: MOp::AddRI,
                    fuse: 0,
                    a: n1.a,
                    b: n1.b,
                    c: n2.a,
                    imm: (n1.imm & 0xFFFF) | (n2.imm << 16),
                },
                MicroOp {
                    op: MOp::Bne,
                    fuse: 0,
                    a: n2.b,
                    b: m3.a,
                    c: m3.b,
                    imm: m3.imm,
                },
            ))
        }
        // `addrr u,x,y ; lw d,off(u) ; addrr v,p,q` — the load's base is
        // the first add's destination and the second add consumes the
        // loaded value (accumulator idiom). Layout:
        // op = {a:u, b:x, c:y, imm:off}, op2 = {a:d, b:v, c:q, imm:0}
        // where q is the second add's non-loaded operand.
        (MOp::AddRR, MOp::Lw, MOp::AddRR) if m2.b == n1.a => {
            let q = other_operand(n3, m2.a)?;
            Some((
                CH3_ADD_LW_ADD,
                MicroOp {
                    op: MOp::AddRR,
                    fuse: 0,
                    a: n1.a,
                    b: n1.b,
                    c: n1.c,
                    imm: m2.imm,
                },
                MicroOp {
                    op: MOp::Lw,
                    fuse: 0,
                    a: m2.a,
                    b: n3.a,
                    c: q,
                    imm: 0,
                },
            ))
        }
        // `lw d,off(base) ; addrr u,x,y ; addrr v,p,q` — the first add
        // consumes the loaded value, the second consumes the first's
        // result. Layout: op = {a:d, b:base, c:y, imm:off},
        // op2 = {a:u, b:v, c:q, imm:0}.
        (MOp::Lw, MOp::AddRR, MOp::AddRR) => {
            let y = other_operand(n2, n1.a)?;
            let q = other_operand(n3, n2.a)?;
            Some((
                CH3_LW_ADD_ADD,
                MicroOp {
                    op: MOp::Lw,
                    fuse: 0,
                    a: n1.a,
                    b: n1.b,
                    c: y,
                    imm: n1.imm,
                },
                MicroOp {
                    op: MOp::AddRR,
                    fuse: 0,
                    a: n2.a,
                    b: n3.a,
                    c: q,
                    imm: 0,
                },
            ))
        }
        // `andri t,s,i1 ; sllri u,x,i2 ; addrr v,p,q` — mask, scale,
        // index; the add consumes the shift's result and both immediates
        // fit i16. Layout: op = {a:t, b:s, c:u, imm: i1 & 0xFFFF | i2 << 16},
        // op2 = {a:x, b:v, c:p, imm:0}.
        (MOp::AndRI, MOp::SllRI, MOp::AddRR)
            if i16::try_from(n1.imm).is_ok() && i16::try_from(n2.imm).is_ok() =>
        {
            let p = other_operand(n3, n2.a)?;
            Some((
                CH3_ANDI_SLLI_ADD,
                MicroOp {
                    op: MOp::AndRI,
                    fuse: 0,
                    a: n1.a,
                    b: n1.b,
                    c: n2.a,
                    imm: (n1.imm & 0xFFFF) | (n2.imm << 16),
                },
                MicroOp {
                    op: MOp::SllRI,
                    fuse: 0,
                    a: n2.b,
                    b: n3.a,
                    c: p,
                    imm: 0,
                },
            ))
        }
        // `sllri t,s,sh ; addrr u,x,y ; fld fd,off(u)` — the
        // address-generation chain feeding an f64 load. Same layout as
        // [`CH3_SLLI_ADD_LW`] with the float destination in `op2.c`.
        (MOp::SllRI, MOp::AddRR, MOp::FLd) if m3.b == n2.a => Some((
            CH3_SLLI_ADD_FLD,
            MicroOp {
                op: MOp::SllRI,
                fuse: 0,
                a: n1.a,
                b: n1.b,
                c: n2.a,
                imm: n1.imm,
            },
            MicroOp {
                op: MOp::FLd,
                fuse: 0,
                a: n2.b,
                b: n2.c,
                c: m3.a,
                imm: m3.imm,
            },
        )),
        // `lw d1,off1(b1) ; lw d2,off2(b2) ; lw d3,off3(b3)` — a gather
        // run; the two later offsets must fit i16 (packed together).
        // Layout: op = {a:d1, b:b1, c:d2, imm:off1},
        //         op2 = {a:b2, b:d3, c:b3, imm: off2 & 0xFFFF | off3 << 16}.
        (MOp::Lw, MOp::Lw, MOp::Lw)
            if i16::try_from(m2.imm).is_ok() && i16::try_from(m3.imm).is_ok() =>
        {
            Some((
                CH3_LW_LW_LW,
                MicroOp {
                    op: MOp::Lw,
                    fuse: 0,
                    a: m1.a,
                    b: m1.b,
                    c: m2.a,
                    imm: m1.imm,
                },
                MicroOp {
                    op: MOp::Lw,
                    fuse: 0,
                    a: m2.b,
                    b: m3.a,
                    c: m3.b,
                    imm: (m2.imm & 0xFFFF) | (m3.imm << 16),
                },
            ))
        }
        // `sw rs1,off1(b1) ; sw rs2,off2(b2) ; sw rs3,off3(b3)` — a
        // scatter run; same offset packing as the load run.
        (MOp::Sw, MOp::Sw, MOp::Sw)
            if i16::try_from(m2.imm).is_ok() && i16::try_from(m3.imm).is_ok() =>
        {
            Some((
                CH3_SW_SW_SW,
                MicroOp {
                    op: MOp::Sw,
                    fuse: 0,
                    a: m1.a,
                    b: m1.b,
                    c: m2.a,
                    imm: m1.imm,
                },
                MicroOp {
                    op: MOp::Sw,
                    fuse: 0,
                    a: m2.b,
                    b: m3.a,
                    c: m3.b,
                    imm: (m2.imm & 0xFFFF) | (m3.imm << 16),
                },
            ))
        }
        // `addrr u,x,y ; fld fd,off(u) ; fmul fv = fd * fq` — address
        // compute, f64 load, and the multiply consuming the loaded value.
        // Layout: op = {a:u, b:x, c:y, imm:off}, op2 = {a:fd, b:fv, c:fq}.
        // (`f64` multiply is order-sensitive in NaN payloads, so the
        // loaded value must be the multiply's *first* operand — the
        // handler replays `fd * fq` exactly.)
        (MOp::AddRR, MOp::FLd, MOp::FMul) if m2.b == n1.a && m3.b == m2.a => {
            let fq = m3.c;
            Some((
                CH3_ADD_FLD_FMUL,
                MicroOp {
                    op: MOp::AddRR,
                    fuse: 0,
                    a: n1.a,
                    b: n1.b,
                    c: n1.c,
                    imm: m2.imm,
                },
                MicroOp {
                    op: MOp::FLd,
                    fuse: 0,
                    a: m2.a,
                    b: m3.a,
                    c: fq,
                    imm: 0,
                },
            ))
        }
        // `fld fd,off(b) ; fmul u = fd * t ; fadd v = u + q` — the float
        // multiply-accumulate chain.
        // Layout: op = {a:fd, b:b, c:t, imm:off}, op2 = {a:u, b:v, c:q}.
        // (Positional guards again: `f64` arithmetic NaN payloads are
        // order-sensitive, so the chained values must be the consumers'
        // first operands, exactly as the handler replays them.)
        (MOp::FLd, MOp::FMul, MOp::FAdd) if m2.b == m1.a && m3.b == m2.a => {
            let t = m2.c;
            let q = m3.c;
            Some((
                CH3_FLD_FMUL_FADD,
                MicroOp {
                    op: MOp::FLd,
                    fuse: 0,
                    a: m1.a,
                    b: m1.b,
                    c: t,
                    imm: m1.imm,
                },
                MicroOp {
                    op: MOp::FMul,
                    fuse: 0,
                    a: m2.a,
                    b: m3.a,
                    c: q,
                    imm: 0,
                },
            ))
        }
        // `addri/li a1,b1,imm ; sltrr u = x < a1 ; subrr v = q - u` —
        // the GSM saturation idiom: materialize a bound, compare against
        // it, then consume the comparison. `slt` and `sub` are not
        // commutative, so the chained values must sit in the exact
        // positions the handler replays (bound as the compare's rhs, the
        // comparison result as the subtract's rhs). Layout:
        // op = {a:a1, b:b1, c:u, imm:imm}, op2 = {a:x, b:v, c:q, imm:0}.
        (MOp::AddRI, MOp::SltRR, MOp::SubRR) if n2.c == n1.a && n3.c == n2.a => {
            let x = n2.b;
            let q = n3.b;
            Some((
                CH3_ADDI_SLT_SUB,
                MicroOp {
                    op: MOp::AddRI,
                    fuse: 0,
                    a: n1.a,
                    b: n1.b,
                    c: n2.a,
                    imm: n1.imm,
                },
                MicroOp {
                    op: MOp::SltRR,
                    fuse: 0,
                    a: x,
                    b: n3.a,
                    c: q,
                    imm: 0,
                },
            ))
        }
        _ => None,
    }
}

/// The pairing pass: greedily fuses adjacent *sequential* trace
/// instructions into combo elements, trying specialized 3-op chains
/// first, then specialized 2-op chains, then the generic classes
/// (ALU/ALU, ALU/load, load/ALU, ALU/branch). Non-sequential neighbors
/// (laid across a traced-through jump) and uncovered shapes stay single.
fn pair_trace(trace: &[(MicroOp, u32)], sb_ops: &mut Vec<SuperOp>) {
    let single = |m: MicroOp, at: u32| {
        let mut pad = MicroOp::new(MOp::Nop);
        pad.fuse = COMBO_NONE;
        SuperOp {
            op: m,
            at,
            op2: pad,
            at2: at,
        }
    };
    let mut k = 0;
    while k < trace.len() {
        let (m1, at1) = trace[k];
        // Specialized triples: three sequential instructions collapsed
        // into one element (`at2` = the *last* instruction, so exits and
        // the sequential post-pass see the chain's true extent).
        if let (Some(&(m2, at2)), Some(&(m3, at3))) = (trace.get(k + 1), trace.get(k + 2)) {
            if at2 == at1 + 1 && at3 == at1 + 2 {
                if let Some((tag, op, mut op2)) = specialize_triple(m1, m2, m3) {
                    op2.fuse = tag;
                    sb_ops.push(SuperOp {
                        op,
                        at: at1,
                        op2,
                        at2: at3,
                    });
                    k += 3;
                    continue;
                }
            }
        }
        let next = trace.get(k + 1).filter(|&&(_, at2)| at2 == at1 + 1);
        if let Some(&(m2, at2)) = next {
            if let Some((tag, op, mut op2)) = specialize_pair(m1, m2) {
                op2.fuse = tag;
                sb_ops.push(SuperOp { op, at: at1, op2, at2 });
                k += 2;
                continue;
            }
        }
        let combo = next.and_then(|&(m2, at2)| {
            let pair = match (alu_normalized(m1), alu_normalized(m2)) {
                (Some(a1), Some(a2)) => (COMBO_ALU_ALU, a1, a2),
                (Some(a1), None) if is_load(m2.op) => (COMBO_ALU_LOAD, a1, m2),
                (Some(a1), None) if is_branch(m2.op) => (COMBO_ALU_BRANCH, a1, m2),
                (Some(a1), None) if is_store(m2.op) => (COMBO_ALU_STORE, a1, m2),
                (None, Some(a2)) if is_load(m1.op) => (COMBO_LOAD_ALU, m1, a2),
                (None, Some(a2)) if is_store(m1.op) => (COMBO_STORE_ALU, m1, a2),
                (None, None) if is_store(m1.op) && is_store(m2.op) => {
                    (COMBO_STORE_STORE, m1, m2)
                }
                _ if always_falls_through(m1.op) => (COMBO_ANY_ANY, m1, m2),
                _ => return None,
            };
            Some((pair, at2))
        });
        match combo {
            Some(((tag, op, mut op2), at2)) => {
                op2.fuse = tag;
                sb_ops.push(SuperOp { op, at: at1, op2, at2 });
                k += 2;
            }
            None => {
                sb_ops.push(single(m1, at1));
                k += 1;
            }
        }
    }
}

fn alu_rr(op: AluOp) -> MOp {
    match op {
        AluOp::Add => MOp::AddRR,
        AluOp::Sub => MOp::SubRR,
        AluOp::Mul => MOp::MulRR,
        AluOp::Div => MOp::DivRR,
        AluOp::Rem => MOp::RemRR,
        AluOp::Divu => MOp::DivuRR,
        AluOp::Remu => MOp::RemuRR,
        AluOp::And => MOp::AndRR,
        AluOp::Or => MOp::OrRR,
        AluOp::Xor => MOp::XorRR,
        AluOp::Nor => MOp::NorRR,
        AluOp::Sll => MOp::SllRR,
        AluOp::Srl => MOp::SrlRR,
        AluOp::Sra => MOp::SraRR,
        AluOp::Slt => MOp::SltRR,
        AluOp::Sltu => MOp::SltuRR,
    }
}

fn alu_ri(op: AluOp) -> MOp {
    match op {
        AluOp::Add => MOp::AddRI,
        AluOp::Sub => MOp::SubRI,
        AluOp::Mul => MOp::MulRI,
        AluOp::Div => MOp::DivRI,
        AluOp::Rem => MOp::RemRI,
        AluOp::Divu => MOp::DivuRI,
        AluOp::Remu => MOp::RemuRI,
        AluOp::And => MOp::AndRI,
        AluOp::Or => MOp::OrRI,
        AluOp::Xor => MOp::XorRI,
        AluOp::Nor => MOp::NorRI,
        AluOp::Sll => MOp::SllRI,
        AluOp::Srl => MOp::SrlRI,
        AluOp::Sra => MOp::SraRI,
        AluOp::Slt => MOp::SltRI,
        AluOp::Sltu => MOp::SltuRI,
    }
}

fn branch_op(cond: CmpOp) -> MOp {
    match cond {
        CmpOp::Eq => MOp::Beq,
        CmpOp::Ne => MOp::Bne,
        CmpOp::Lt => MOp::Blt,
        CmpOp::Ge => MOp::Bge,
        CmpOp::Ltu => MOp::Bltu,
        CmpOp::Geu => MOp::Bgeu,
    }
}

#[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
fn decode_instr(instr: &Instr, fpool: &mut Vec<f64>) -> MicroOp {
    match *instr {
        Instr::Alu { op, rd, rs, rt } => MicroOp::regs(
            alu_rr(op),
            rd.index() as u8,
            rs.index() as u8,
            rt.index() as u8,
        ),
        Instr::AluImm { op, rd, rs, imm } => {
            MicroOp::imm(alu_ri(op), rd.index() as u8, rs.index() as u8, imm)
        }
        Instr::Li { rd, imm } => MicroOp::imm(MOp::Li, rd.index() as u8, 0, imm),
        Instr::Load {
            width,
            signed,
            rd,
            base,
            off,
        } => {
            let op = match (width, signed) {
                (MemWidth::Byte, true) => MOp::Lb,
                (MemWidth::Byte, false) => MOp::Lbu,
                (MemWidth::Half, true) => MOp::Lh,
                (MemWidth::Half, false) => MOp::Lhu,
                (MemWidth::Word, _) => MOp::Lw,
            };
            MicroOp::imm(op, rd.index() as u8, base.index() as u8, off)
        }
        Instr::Store {
            width,
            rs,
            base,
            off,
        } => {
            let op = match width {
                MemWidth::Byte => MOp::Sb,
                MemWidth::Half => MOp::Sh,
                MemWidth::Word => MOp::Sw,
            };
            MicroOp::imm(op, rs.index() as u8, base.index() as u8, off)
        }
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => MicroOp::imm(
            branch_op(cond),
            rs.index() as u8,
            rt.index() as u8,
            target as i32,
        ),
        Instr::Jump { target } => MicroOp::imm(MOp::Jump, 0, 0, target as i32),
        Instr::Call { target } => MicroOp::imm(
            MOp::Call,
            certa_isa::reg::RA.index() as u8,
            0,
            target as i32,
        ),
        Instr::JumpReg { rs } => MicroOp::regs(MOp::JumpReg, rs.index() as u8, 0, 0),
        Instr::Fpu { op, fd, fs, ft } => {
            let m = match op {
                FpuOp::Add => MOp::FAdd,
                FpuOp::Sub => MOp::FSub,
                FpuOp::Mul => MOp::FMul,
                FpuOp::Div => MOp::FDiv,
                FpuOp::Min => MOp::FMin,
                FpuOp::Max => MOp::FMax,
            };
            MicroOp::regs(m, fd.index() as u8, fs.index() as u8, ft.index() as u8)
        }
        Instr::FMov { fd, fs } => MicroOp::regs(MOp::FMov, fd.index() as u8, fs.index() as u8, 0),
        Instr::FAbs { fd, fs } => MicroOp::regs(MOp::FAbs, fd.index() as u8, fs.index() as u8, 0),
        Instr::FNeg { fd, fs } => MicroOp::regs(MOp::FNeg, fd.index() as u8, fs.index() as u8, 0),
        Instr::FSqrt { fd, fs } => {
            MicroOp::regs(MOp::FSqrt, fd.index() as u8, fs.index() as u8, 0)
        }
        Instr::FLi { fd, value } => {
            let idx = fpool.len() as i32;
            fpool.push(value);
            MicroOp::imm(MOp::FLi, fd.index() as u8, 0, idx)
        }
        Instr::FLoad { fd, base, off } => {
            MicroOp::imm(MOp::FLd, fd.index() as u8, base.index() as u8, off)
        }
        Instr::FStore { fs, base, off } => {
            MicroOp::imm(MOp::FSd, fs.index() as u8, base.index() as u8, off)
        }
        Instr::CvtIF { fd, rs } => MicroOp::regs(MOp::CvtIF, fd.index() as u8, rs.index() as u8, 0),
        Instr::CvtFI { rd, fs } => MicroOp::regs(MOp::CvtFI, rd.index() as u8, fs.index() as u8, 0),
        Instr::FCmp { op, rd, fs, ft } => {
            let m = match op {
                FCmpOp::Eq => MOp::FCeq,
                FCmpOp::Lt => MOp::FClt,
                FCmpOp::Le => MOp::FCle,
            };
            MicroOp::regs(m, rd.index() as u8, fs.index() as u8, ft.index() as u8)
        }
        Instr::Halt => MicroOp::new(MOp::Halt),
        Instr::Nop => MicroOp::new(MOp::Nop),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_isa::reg;

    /// The documented ALU discriminant layout: decoding `AluOp::ALL[i]`
    /// lands on discriminant `i` (register-register) / `16 + i`
    /// (register-immediate).
    #[test]
    fn alu_discriminants_follow_all_order() {
        for (i, &op) in AluOp::ALL.iter().enumerate() {
            assert_eq!(alu_rr(op) as u8, i as u8, "{op:?} RR");
            assert_eq!(alu_ri(op) as u8, 16 + i as u8, "{op:?} RI");
        }
    }

    #[test]
    fn micro_op_is_12_bytes() {
        assert_eq!(std::mem::size_of::<MicroOp>(), 12);
    }

    #[test]
    fn decode_is_one_to_one_with_code() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 5);
        a.addi(reg::T0, reg::T0, 1);
        a.fli(reg::F0, 2.5);
        a.fli(reg::F1, -1.0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.len(), p.code.len());
        assert_eq!(d.fpool(), &[2.5, -1.0]);
        assert_eq!(d.ops()[0].op, MOp::Li);
        assert_eq!(d.ops()[1].op, MOp::AddRI);
        assert_eq!(d.ops()[4].op, MOp::Halt);
    }

    #[test]
    fn fusion_marks_fall_through_heads_only() {
        let mut a = certa_asm::Asm::new();
        let buf = a.data_zero(8);
        a.func("main", false);
        a.la(reg::T0, buf); //  0: li     — head
        a.lw(reg::T1, 0, reg::T0); //  1: load   — head (fall-through on success)
        a.addi(reg::T1, reg::T1, 1); //  2: alui   — head
        a.bnez(reg::T1, "skip"); //  3: branch — head (fall-through when not taken)
        a.j("main"); //  4: jump   — never falls through
        a.label("skip");
        a.nop(); //  5: nop    — head
        a.halt(); //  6: halt   — never falls through (and last)
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        let flags: Vec<u8> = d.ops().iter().map(|m| m.fuse).collect();
        assert_eq!(flags, [1, 1, 1, 1, 0, 1, 0]);
        assert_eq!(d.fused_pairs(), 5);
    }

    #[test]
    fn superblocks_cover_block_entries_only() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 3); //  0: block entry (program entry)
        a.label("loop");
        a.addi(reg::T0, reg::T0, -1); //  1: block entry (branch target)
        a.bnez(reg::T0, "loop"); //  2
        a.halt(); //  3: block entry (after branch)
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        assert!(d.superblock_count() >= 2);
        // Entries only at leaders: 0, 1, 3.
        let entries: Vec<usize> = (0..d.len())
            .filter(|&i| d.sb_entry()[i] != 0)
            .collect();
        assert!(entries.contains(&0));
        assert!(entries.contains(&1));
        assert!(!entries.contains(&2), "mid-block pc is never a trace entry");
    }

    #[test]
    fn traces_follow_jumps_and_stop_on_cycles() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1); // 0
        a.j("tail"); // 1: traced through
        a.label("dead");
        a.nop(); // 2
        a.label("tail");
        a.addi(reg::T0, reg::T0, 1); // 3
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        // The trace from instruction 0 follows the jump into `tail` and
        // ends at the halt: instructions {0, 1, 3, 4}.
        let id = d.sb_entry()[0];
        assert!(id != 0, "entry block earns a trace");
        let info = d.superblocks()[(id - 1) as usize];
        assert_eq!(info.instrs, 4);
        let ats: Vec<u32> = d.sb_ops()[info.start as usize..(info.start + info.elems) as usize]
            .iter()
            .flat_map(|s| {
                if s.op2.fuse == COMBO_NONE {
                    vec![s.at]
                } else {
                    vec![s.at, s.at2]
                }
            })
            .collect();
        assert_eq!(ats, [0, 1, 3, 4]);

        // A self-loop cannot trace forever.
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.label("spin");
        a.j("spin");
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        assert!(d.superblock_count() <= 1);
        assert!(d.superblock_ops() <= 1);
    }

    #[test]
    fn traces_follow_calls_and_returns() {
        let mut a = certa_asm::Asm::new();
        a.func("sq", false);
        a.mul(reg::V0, reg::A0, reg::A0); // 0
        a.ret(); // 1
        a.endfunc();
        a.func("main", false);
        a.li(reg::A0, 4); // 2 (entry)
        a.call("sq"); // 3
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        let id = d.sb_entry()[2];
        assert!(id != 0);
        let info = d.superblocks()[(id - 1) as usize];
        // li, call, callee mul, callee ret, then the return point (halt).
        assert_eq!(info.instrs, 5);
        let first = d.sb_ops()[info.start as usize];
        assert_eq!(first.at, 2);
    }

    #[test]
    fn pairing_covers_alu_chains_and_normalizes_li() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 7); // 0: li -> AddRI against $zero
        a.addi(reg::T0, reg::T0, 1); // 1
        a.add(reg::T1, reg::T0, reg::T0); // 2
        a.sub(reg::T1, reg::T1, reg::T0); // 3
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        let id = d.sb_entry()[0];
        let info = d.superblocks()[(id - 1) as usize];
        assert_eq!(info.instrs, 5);
        // Four ALU-class ops pair into two combo elements, plus the halt.
        assert_eq!(info.elems, 3);
        let body = &d.sb_ops()[info.start as usize..(info.start + info.elems) as usize];
        assert_eq!(body[0].op2.fuse, COMBO_ALU_ALU);
        assert_eq!(body[0].op.op, MOp::AddRI, "li normalized to addi-from-zero");
        assert_eq!(body[0].op.b, 0);
        assert_eq!(
            body[1].op2.fuse,
            CH_ADD_SUB,
            "add+sub hits its specialized chain arm"
        );
        assert_eq!(body[2].op2.fuse, COMBO_NONE);
    }

    #[test]
    fn taken_path_unrolls_loop_laps_and_truncates_to_latch() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 100); // 0
        a.label("loop");
        a.addi(reg::T0, reg::T0, -1); // 1
        a.addi(reg::T1, reg::T1, 2); // 2
        a.bnez(reg::T0, "loop"); // 3: loop-closing back edge
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                max_len: 16,
                ..SuperblockPolicy::default()
            },
        );
        // The entry trace lays {0} then unrolls {1,2,3} laps up to the
        // cap, truncated back to a complete lap: 0 + 5×{1,2,3} = 16
        // instructions exactly (the cap), ending at the latch.
        let id = d.sb_entry()[0];
        assert!(id != 0);
        let info = d.superblocks()[(id - 1) as usize];
        assert_eq!(info.instrs, 16, "truncation keeps complete laps only");
        let body = &d.sb_ops()[info.start as usize..(info.start + info.elems) as usize];
        let last = body.last().unwrap();
        assert_eq!(
            last.at2, 3,
            "the trace ends at the loop-closing branch, so the taken \
             continuation re-enters at the header"
        );
        // The loop-header trace unrolls too: {1,2,3} × 5 = 15.
        let id = d.sb_entry()[1];
        assert!(id != 0);
        let info = d.superblocks()[(id - 1) as usize];
        assert_eq!(info.instrs, 15);
        // The latch triple (addi+addi? no — addi,addi,bnez is not a
        // specialized triple) still pairs: just verify elements retire
        // all 15 instructions.
        let body = &d.sb_ops()[info.start as usize..(info.start + info.elems) as usize];
        let counted: u32 = body
            .iter()
            .map(|s| match s.op2.fuse {
                COMBO_NONE => 1,
                tag if tag >= CH3_FIRST => 3,
                _ => 2,
            })
            .sum();
        assert_eq!(counted, 15);
    }

    #[test]
    fn disabled_policy_builds_no_superblocks() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1);
        a.addi(reg::T0, reg::T0, 1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(&p, &SuperblockPolicy::disabled());
        assert_eq!(d.superblock_count(), 0);
        assert!(d.sb_entry().iter().all(|&e| e == 0));
    }

    #[test]
    fn seeded_policy_skips_cold_blocks() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1); // 0: hot
        a.addi(reg::T0, reg::T0, 1); // 1
        a.beqz(reg::T0, "cold"); // 2
        a.halt(); // 3
        a.label("cold");
        a.nop(); // 4: never executed in the golden run
        a.nop(); // 5
        a.halt(); // 6
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut counts = vec![1u64; p.code.len()];
        counts[4] = 0;
        counts[5] = 0;
        counts[6] = 0;
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::seeded(counts)
            },
        );
        assert!(d.sb_entry()[0] != 0, "hot entry gets a trace");
        assert_eq!(d.sb_entry()[4], 0, "cold block is skipped");
    }

    #[test]
    fn sequential_flags_reflect_layout() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.fli(reg::F0, 1.0); // 0 (float: pairs via the catch-all combo)
        a.fli(reg::F1, 2.0); // 1
        a.j("next"); // 2: traced through — non-sequential continuation
        a.label("dead");
        a.nop(); // 3
        a.label("next");
        a.fli(reg::F2, 3.0); // 4
        a.halt(); // 5
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        let id = d.sb_entry()[0];
        let info = d.superblocks()[(id - 1) as usize];
        let body = &d.sb_ops()[info.start as usize..(info.start + info.elems) as usize];
        // {0,1} pair through the catch-all combo and fall sequentially
        // into 2; the jump's continuation to 4 is NOT sequential (it
        // continues via the dynamic-target rule); {4,5} (fli+halt) pair,
        // terminal.
        assert_eq!(info.elems, 3);
        assert_eq!(body[0].op2.fuse, COMBO_ANY_ANY);
        assert_eq!(body[2].op2.fuse, COMBO_ANY_ANY);
        let flags: Vec<u8> = body.iter().map(|s| s.op.fuse).collect();
        assert_eq!(flags, [1, 0, 0]);
    }

    #[test]
    fn last_instruction_is_never_a_head() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1);
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.ops()[0].fuse, 0, "no successor to fuse with");
    }
}

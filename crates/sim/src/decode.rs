//! The predecode layer: lowering [`certa_isa::Instr`] into a dense,
//! operand-resolved micro-op array the dispatch loop can execute without
//! re-extracting enum payloads on every dynamic instruction.
//!
//! # Lowering
//!
//! [`DecodedProgram::new`] walks the instruction stream once and produces
//! one [`MicroOp`] per instruction:
//!
//! * register operands become raw `u8` indices (no newtype unwrapping in
//!   the hot loop),
//! * branch/jump/call targets and memory offsets live in one `i32`
//!   immediate slot,
//! * sub-operation selectors (ALU op, access width, sign extension, branch
//!   condition, FPU op) are folded into the opcode byte itself, so dispatch
//!   is a single flat match,
//! * `f64` immediates are spilled to a constant pool ([`MicroOp::imm`]
//!   indexes it), keeping every micro-op a fixed 12 bytes.
//!
//! The array is strictly 1:1 with `Program::code`: micro-op `i` is
//! instruction `i`, so the architectural `pc`, branch targets, profiling
//! indices, and [`WritebackHook`](crate::WritebackHook) instruction indices
//! are unchanged by predecoding.
//!
//! # Fusion
//!
//! A second pass marks **fused pair heads**: any instruction that can fall
//! through ([`certa_isa::Instr::can_fall_through`]) to an existing
//! successor. When the head actually does fall through at runtime, the
//! dispatch loop retires its successor in the same iteration, skipping one
//! fetch/bounds-check/loop-latch round trip.
//!
//! The assembler's common idioms — compare + branch, address compute +
//! load/store, `li` + ALU — are the pairs this hits on every loop
//! iteration, and in straight-line bodies nearly every instruction is
//! covered.
//!
//! Because the array stays 1:1, fusion needs no branch-target analysis: a
//! dynamic jump landing on the *second* half of a pair simply executes that
//! slot's ordinary micro-op. The invariants fusion must preserve (and that
//! the differential suite checks) are:
//!
//! * both halves bump `icount` and per-instruction `exec_counts`
//!   individually,
//! * every intermediate writeback — including the head's — flows through
//!   the [`WritebackHook`](crate::WritebackHook), so fault-injection sites
//!   are unchanged,
//! * the second half only retires when the head *fell through* — a taken
//!   branch, crash, or halt in the head ends the iteration exactly as
//!   unfused execution would,
//! * a pair never straddles a watchdog or [`run_until`]
//!   boundary: when the second half would cross it, the head executes
//!   alone as an ordinary micro-op.
//!
//! # Superblocks
//!
//! A third pass derives a **superblock table** from the program's control
//! flow graph ([`certa_core::Cfg`]): for each basic-block entry, a
//! straight-line *trace* of micro-ops is laid out by following fall-through
//! edges and unconditional jumps across block boundaries, with conditional
//! branches embedded as **side-exit guards** (taken → leave the trace) and
//! calls/indirect jumps/halts terminating it. The dispatch loop executes a
//! whole trace with watchdog/pause checks hoisted to the trace boundary —
//! see [`crate::Machine::run`] — falling back to fused per-op dispatch for
//! cold blocks and mid-block entry points (e.g. resuming from a snapshot
//! taken mid-trace).
//!
//! Each trace element carries its original instruction index, so `pc`,
//! `icount`, `exec_counts`, and hook indices remain exactly 1:1 with the
//! reference interpreter. A [`SuperblockPolicy`] decides which block
//! entries earn a trace: by static trace length, or seeded with
//! `exec_counts` from a profiled run so only blocks the golden run actually
//! executed get bodies (the fault campaign uses this for trial machines).
//!
//! [`run_until`]: crate::Machine::run_until

use certa_core::Cfg;
use certa_isa::{AluOp, BranchKind, CmpOp, FCmpOp, FpuOp, Instr, MemWidth, Program};

/// Micro-op opcode with every sub-operation selector folded in.
///
/// The dispatch loop matches each variant with its own arm; the ALU block
/// is laid out contiguously in [`AluOp::ALL`] order (register-register
/// forms first, then register-immediate) purely as a reading aid, with a
/// unit test pinning the correspondence.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MOp {
    // 0..=15: register-register ALU, in AluOp::ALL order.
    AddRR = 0,
    SubRR,
    MulRR,
    DivRR,
    RemRR,
    DivuRR,
    RemuRR,
    AndRR,
    OrRR,
    XorRR,
    NorRR,
    SllRR,
    SrlRR,
    SraRR,
    SltRR,
    SltuRR,
    // 16..=31: register-immediate ALU, in AluOp::ALL order.
    AddRI,
    SubRI,
    MulRI,
    DivRI,
    RemRI,
    DivuRI,
    RemuRI,
    AndRI,
    OrRI,
    XorRI,
    NorRI,
    SllRI,
    SrlRI,
    SraRI,
    SltRI,
    SltuRI,
    /// `a = imm`.
    Li,
    /// Sign-extending byte load: `a = sx8(mem[rb + imm])`.
    Lb,
    /// Zero-extending byte load.
    Lbu,
    /// Sign-extending halfword load.
    Lh,
    /// Zero-extending halfword load.
    Lhu,
    /// Word load.
    Lw,
    /// Byte store: `mem[rb + imm] = ra`.
    Sb,
    /// Halfword store.
    Sh,
    /// Word store.
    Sw,
    /// Branch to `imm` if `ra == rb`.
    Beq,
    /// Branch if `ra != rb`.
    Bne,
    /// Branch if `ra < rb` (signed).
    Blt,
    /// Branch if `ra >= rb` (signed).
    Bge,
    /// Branch if `ra < rb` (unsigned).
    Bltu,
    /// Branch if `ra >= rb` (unsigned).
    Bgeu,
    /// Unconditional jump to `imm`.
    Jump,
    /// Call: `$ra = pc + 1`, jump to `imm` (`a` carries the RA index).
    Call,
    /// Indirect jump to the value of register `a`.
    JumpReg,
    /// `fa = fb + fc`.
    FAdd,
    /// `fa = fb - fc`.
    FSub,
    /// `fa = fb * fc`.
    FMul,
    /// `fa = fb / fc`.
    FDiv,
    /// `fa = min(fb, fc)`.
    FMin,
    /// `fa = max(fb, fc)`.
    FMax,
    /// `fa = fb`.
    FMov,
    /// `fa = |fb|`.
    FAbs,
    /// `fa = -fb`.
    FNeg,
    /// `fa = sqrt(fb)`.
    FSqrt,
    /// `fa = fpool[imm]`.
    FLi,
    /// `fa = mem_f64[rb + imm]`.
    FLd,
    /// `mem_f64[rb + imm] = fa`.
    FSd,
    /// `fa = rb as i32 as f64`.
    CvtIF,
    /// `a = fb as i32` (truncating, saturating).
    CvtFI,
    /// `a = (fb == fc) as u32`.
    FCeq,
    /// `a = (fb < fc) as u32`.
    FClt,
    /// `a = (fb <= fc) as u32`.
    FCle,
    /// Stop successfully.
    Halt,
    /// No operation.
    Nop,
}

/// One predecoded instruction: folded opcode, raw register indices, one
/// immediate. 12 bytes, `Copy`, fetched as a unit by the dispatch loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    /// Folded opcode.
    pub(crate) op: MOp,
    /// Non-zero when this op heads a fused pair (see the module docs); the
    /// second half is always the micro-op at the next index.
    pub(crate) fuse: u8,
    /// First register field (destination, store source, or branch lhs).
    pub(crate) a: u8,
    /// Second register field (source / base / branch rhs).
    pub(crate) b: u8,
    /// Third register field (second ALU/FPU source).
    pub(crate) c: u8,
    /// Immediate: ALU immediate, memory offset, branch/jump target, or
    /// `f64` constant-pool index.
    pub(crate) imm: i32,
}

impl MicroOp {
    fn new(op: MOp) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a: 0,
            b: 0,
            c: 0,
            imm: 0,
        }
    }

    fn regs(op: MOp, a: u8, b: u8, c: u8) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a,
            b,
            c,
            imm: 0,
        }
    }

    fn imm(op: MOp, a: u8, b: u8, imm: i32) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a,
            b,
            c: 0,
            imm,
        }
    }
}

/// Combo tag: no second op — the element executes `op` alone.
pub(crate) const COMBO_NONE: u8 = 0;
/// Combo tag: two ALU/`li` ops retired by one dispatch.
pub(crate) const COMBO_ALU_ALU: u8 = 1;
/// Combo tag: ALU/`li` feeding (or preceding) an integer load.
pub(crate) const COMBO_ALU_LOAD: u8 = 2;
/// Combo tag: integer load followed by an ALU/`li` op.
pub(crate) const COMBO_LOAD_ALU: u8 = 3;
/// Combo tag: ALU/`li` followed by a conditional branch.
pub(crate) const COMBO_ALU_BRANCH: u8 = 4;

/// One element of a superblock trace: one micro-op — or a **combo pair**
/// of two adjacent micro-ops retired by a single dispatch — plus the
/// instruction indices they were lifted from, so hooks, profiling, and
/// `pc` reconstruction stay 1:1 with the source program. 32 bytes, laid
/// out densely per trace.
///
/// Two bytes are repurposed inside the copied micro-ops:
///
/// * `op.fuse` is the **sequential continuation flag**: non-zero means
///   the next trace element starts at this element's last instruction
///   plus one, so a fall-through retirement stays inside the trace
///   without any bounds or index check.
/// * `op2.fuse` is the **combo tag** (`COMBO_*`): which fused-pair arm
///   executes this element, or [`COMBO_NONE`] for a single op.
///
/// Control transfers use the universal continuation rule instead: the
/// trace continues iff the next element's `at` equals the dynamic target
/// (sound for any linearization — traced-through jumps and call returns
/// compare equal, side exits compare unequal).
///
/// Combo pairs keep per-instruction observability exactly: both halves
/// bump `icount`/`exec_counts` individually, writebacks flow through the
/// hook in program order with their own instruction indices, and a crash
/// in either half reports that half's `pc`. `li` halves are normalized to
/// `addi rd, $zero, imm` so the ALU arms cover them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SuperOp {
    /// First micro-op (`fuse` = sequential continuation flag).
    pub(crate) op: MicroOp,
    /// Original instruction index of `op`.
    pub(crate) at: u32,
    /// Second micro-op of a combo pair (`fuse` = combo tag); `Nop` with
    /// tag [`COMBO_NONE`] for single elements.
    pub(crate) op2: MicroOp,
    /// Original instruction index of `op2` (meaningful only for combos).
    pub(crate) at2: u32,
}

impl SuperOp {
    /// Instruction index the element's fall-through path resumes after:
    /// the last constituent instruction.
    fn last_at(&self) -> u32 {
        if self.op2.fuse == COMBO_NONE {
            self.at
        } else {
            self.at2
        }
    }
}

/// One superblock: a straight-line trace in the shared [`SuperOp`] arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Superblock {
    /// First trace element in the arena.
    pub(crate) start: u32,
    /// Trace length in elements (combo pairs count once).
    pub(crate) elems: u32,
    /// Trace length in **instructions** — the exact upper bound on what
    /// one pass through the trace can retire, which is what the dispatch
    /// loop checks against the watchdog/pause boundary before entering.
    pub(crate) instrs: u32,
}

/// Profitability policy for the superblock pass: which basic-block entries
/// earn a straight-line trace body, and how long traces may grow.
#[derive(Debug, Clone)]
pub struct SuperblockPolicy {
    /// Build superblocks at all (`false` = fused per-op dispatch only; the
    /// benches use this to isolate the superblock tier's contribution).
    pub enable: bool,
    /// Minimum trace length (in micro-ops) worth the block-entry lookup;
    /// shorter traces fall back to fused dispatch.
    pub min_len: usize,
    /// Trace length cap (bounds trace memory and the boundary slack the
    /// dispatch loop must leave before the watchdog/pause target).
    pub max_len: usize,
    /// Optional per-instruction execution counts from a profiled run
    /// (e.g. the campaign's golden run): when present, only block entries
    /// with at least [`SuperblockPolicy::hot_threshold`] recorded
    /// executions get trace bodies.
    pub hot_counts: Option<Vec<u64>>,
    /// Minimum entry execution count for [`SuperblockPolicy::hot_counts`]
    /// seeding.
    pub hot_threshold: u64,
}

impl Default for SuperblockPolicy {
    fn default() -> Self {
        SuperblockPolicy {
            enable: true,
            min_len: 2,
            max_len: 64,
            hot_counts: None,
            hot_threshold: 1,
        }
    }
}

impl SuperblockPolicy {
    /// Superblocks off: the decoded program executes purely through the
    /// fused per-op dispatch tier.
    #[must_use]
    pub fn disabled() -> Self {
        SuperblockPolicy {
            enable: false,
            ..SuperblockPolicy::default()
        }
    }

    /// Profile-seeded policy: only basic blocks whose entry instruction
    /// executed at least once in `exec_counts` get trace bodies. The fault
    /// campaign seeds trial machines with the golden run's counts.
    #[must_use]
    pub fn seeded(exec_counts: Vec<u64>) -> Self {
        SuperblockPolicy {
            hot_counts: Some(exec_counts),
            ..SuperblockPolicy::default()
        }
    }
}

/// A program lowered to the micro-op form the dispatch loop executes: a
/// dense array strictly 1:1 with `Program::code`, the `f64` constant
/// pool, and the superblock trace table. Immutable once built; cheap to
/// share across trial machines via [`std::sync::Arc`] (the fault campaign
/// decodes once per campaign).
#[derive(Debug)]
pub struct DecodedProgram {
    ops: Vec<MicroOp>,
    fpool: Vec<f64>,
    fused_pairs: usize,
    /// Superblock descriptors; `sb_entry[pc]` holds `id + 1`.
    superblocks: Vec<Superblock>,
    /// Shared trace arena, indexed by [`Superblock::start`]/`len`.
    sb_ops: Vec<SuperOp>,
    /// Per-instruction superblock entry map: `0` = no trace starts here,
    /// else the superblock id plus one. Only basic-block entry points are
    /// ever non-zero.
    sb_entry: Vec<u32>,
}

impl DecodedProgram {
    /// Lowers `program` with the default [`SuperblockPolicy`] (decode pass
    /// + fusion pass + CFG-derived superblock pass).
    #[must_use]
    pub fn new(program: &Program) -> Self {
        Self::with_policy(program, &SuperblockPolicy::default())
    }

    /// Lowers `program` with an explicit superblock policy.
    #[must_use]
    pub fn with_policy(program: &Program, policy: &SuperblockPolicy) -> Self {
        let mut fpool = Vec::new();
        let mut ops: Vec<MicroOp> = program
            .code
            .iter()
            .map(|instr| decode_instr(instr, &mut fpool))
            .collect();

        // Fusion pass: mark every op that can fall through to an existing
        // successor as a pair head. The dispatch loop retires the successor
        // in the same iteration whenever the head actually fell through.
        let mut fused_pairs = 0;
        for i in 0..ops.len().saturating_sub(1) {
            if program.code[i].can_fall_through() {
                ops[i].fuse = 1;
                fused_pairs += 1;
            }
        }
        let (superblocks, sb_ops, sb_entry) = build_superblocks(program, &ops, policy);
        DecodedProgram {
            ops,
            fpool,
            fused_pairs,
            superblocks,
            sb_ops,
            sb_entry,
        }
    }

    /// Number of micro-ops (equal to the source program's code length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of static fused pair heads (diagnostics and benches).
    #[must_use]
    pub fn fused_pairs(&self) -> usize {
        self.fused_pairs
    }

    /// Number of superblock trace bodies (diagnostics and benches).
    #[must_use]
    pub fn superblock_count(&self) -> usize {
        self.superblocks.len()
    }

    /// Total micro-ops across all superblock traces (diagnostics; traces
    /// overlap, so this can exceed [`DecodedProgram::len`]).
    #[must_use]
    pub fn superblock_ops(&self) -> usize {
        self.sb_ops.len()
    }

    pub(crate) fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    pub(crate) fn fpool(&self) -> &[f64] {
        &self.fpool
    }

    pub(crate) fn superblocks(&self) -> &[Superblock] {
        &self.superblocks
    }

    pub(crate) fn sb_ops(&self) -> &[SuperOp] {
        &self.sb_ops
    }

    pub(crate) fn sb_entry(&self) -> &[u32] {
        &self.sb_entry
    }
}

/// The superblock pass: walks the [`Cfg`] and lays out one straight-line
/// trace per profitable basic-block entry. Traces follow fall-through
/// edges and unconditional jumps, embed conditional branches as side
/// exits, trace **through calls** into the callee (laying the call site's
/// return point after the callee's `jr`, so a well-behaved return
/// continues in-trace — the dispatch loop's dynamic-target comparison
/// side-exits if the return address was corrupted), and stop at indirect
/// jumps with no pending return point, halts, code end, the length cap, or
/// the first revisited block (which bounds every trace even for `j self`
/// loops).
#[allow(clippy::cast_possible_truncation)]
fn build_superblocks(
    program: &Program,
    ops: &[MicroOp],
    policy: &SuperblockPolicy,
) -> (Vec<Superblock>, Vec<SuperOp>, Vec<u32>) {
    let n = ops.len();
    let mut sb_entry = vec![0u32; n];
    if !policy.enable || n == 0 {
        return (Vec::new(), Vec::new(), sb_entry);
    }
    let cfg = Cfg::build(program);
    let min_len = policy.min_len.max(1);
    let mut superblocks: Vec<Superblock> = Vec::new();
    let mut sb_ops: Vec<SuperOp> = Vec::new();
    // Generation-stamped visited set: `visited[b] == seed` means block `b`
    // is already part of the trace currently being built.
    let mut visited = vec![usize::MAX; cfg.len()];
    let mut trace: Vec<(MicroOp, u32)> = Vec::with_capacity(policy.max_len);
    for seed in 0..cfg.len() {
        let entry = cfg.blocks[seed].start;
        if let Some(counts) = &policy.hot_counts {
            if counts.get(entry).copied().unwrap_or(0) < policy.hot_threshold {
                continue;
            }
        }
        trace.clear();
        let mut cur = seed;
        // Return points of calls traced through, innermost last: when the
        // callee's `jr` retires, the trace resumes at the block after the
        // call site (the dispatch loop verifies the dynamic target).
        let mut ret_stack: Vec<usize> = Vec::new();
        'trace: while visited[cur] != seed {
            visited[cur] = seed;
            let block = &cfg.blocks[cur];
            for (i, &op) in ops.iter().enumerate().take(block.end).skip(block.start) {
                if trace.len() >= policy.max_len {
                    break 'trace;
                }
                trace.push((op, i as u32));
            }
            let last = block.end - 1;
            cur = match program.code[last].branch_kind() {
                // Straight-line and not-taken conditional paths continue
                // at the textual successor block.
                BranchKind::FallThrough | BranchKind::Conditional { .. } => {
                    match cfg.fallthrough_succ(cur, program) {
                        Some(next) => next,
                        None => break 'trace,
                    }
                }
                // Unconditional jumps are traced through: the jump retires
                // inside the trace and execution continues at its target.
                BranchKind::Jump { .. } => match cfg.static_target_succ(cur, program) {
                    Some(next) => next,
                    None => break 'trace,
                },
                // Calls are traced into the callee; remember where a
                // matching return should resume.
                BranchKind::Call { .. } => {
                    if last + 1 < n {
                        ret_stack.push(cfg.block_of(last + 1));
                    }
                    match cfg.static_target_succ(cur, program) {
                        Some(next) => next,
                        None => break 'trace,
                    }
                }
                // An indirect jump closes the innermost traced call (the
                // guest's return idiom); with no pending call it ends the
                // trace.
                BranchKind::Indirect => match ret_stack.pop() {
                    Some(next) => next,
                    None => break 'trace,
                },
                BranchKind::Halt => break 'trace,
            };
        }
        if trace.len() < min_len {
            continue;
        }
        let start = sb_ops.len();
        pair_trace(&trace, &mut sb_ops);
        // Sequential-continuation post-pass: an element's `op.fuse` is set
        // iff the next element resumes at this element's last instruction
        // plus one, so fall-through retirements continue in-trace without
        // an index comparison. The final element always exits.
        for k in start..sb_ops.len() {
            let seq = sb_ops
                .get(k + 1)
                .is_some_and(|next| next.at == sb_ops[k].last_at() + 1);
            sb_ops[k].op.fuse = u8::from(seq);
        }
        let id = u32::try_from(superblocks.len()).expect("superblock count fits u32");
        superblocks.push(Superblock {
            start: u32::try_from(start).expect("trace arena fits u32"),
            elems: (sb_ops.len() - start) as u32,
            instrs: trace.len() as u32,
        });
        sb_entry[entry] = id + 1;
    }
    (superblocks, sb_ops, sb_entry)
}

/// Whether a micro-op is an integer ALU form (register-register or
/// register-immediate; the first 32 discriminants).
fn is_alu(op: MOp) -> bool {
    (op as u8) < 32
}

/// Whether a micro-op is an integer load.
fn is_load(op: MOp) -> bool {
    matches!(op, MOp::Lb | MOp::Lbu | MOp::Lh | MOp::Lhu | MOp::Lw)
}

/// Whether a micro-op is a conditional branch.
fn is_branch(op: MOp) -> bool {
    matches!(
        op,
        MOp::Beq | MOp::Bne | MOp::Blt | MOp::Bge | MOp::Bltu | MOp::Bgeu
    )
}

/// Normalizes `li rd, imm` to `addi rd, $zero, imm` so the generic ALU
/// combo arms cover it (reading `$zero` yields 0, so the result is `imm`
/// bit-for-bit, and the writeback path is identical).
fn alu_normalized(m: MicroOp) -> Option<MicroOp> {
    if is_alu(m.op) {
        Some(m)
    } else if m.op == MOp::Li {
        Some(MicroOp {
            op: MOp::AddRI,
            b: 0,
            ..m
        })
    } else {
        None
    }
}

/// The pairing pass: greedily fuses adjacent *sequential* trace
/// instructions into combo elements (ALU/ALU, ALU/load, load/ALU,
/// ALU/branch — the four classes that dominate the dynamic stream),
/// halving dispatches on covered pairs. Non-sequential neighbors (laid
/// across a traced-through jump) and uncovered shapes stay single.
fn pair_trace(trace: &[(MicroOp, u32)], sb_ops: &mut Vec<SuperOp>) {
    let single = |m: MicroOp, at: u32| {
        let mut pad = MicroOp::new(MOp::Nop);
        pad.fuse = COMBO_NONE;
        SuperOp {
            op: m,
            at,
            op2: pad,
            at2: at,
        }
    };
    let mut k = 0;
    while k < trace.len() {
        let (m1, at1) = trace[k];
        let next = trace.get(k + 1).filter(|&&(_, at2)| at2 == at1 + 1);
        let combo = next.and_then(|&(m2, at2)| {
            let pair = match (alu_normalized(m1), alu_normalized(m2)) {
                (Some(a1), Some(a2)) => (COMBO_ALU_ALU, a1, a2),
                (Some(a1), None) if is_load(m2.op) => (COMBO_ALU_LOAD, a1, m2),
                (Some(a1), None) if is_branch(m2.op) => (COMBO_ALU_BRANCH, a1, m2),
                (None, Some(a2)) if is_load(m1.op) => (COMBO_LOAD_ALU, m1, a2),
                _ => return None,
            };
            Some((pair, at2))
        });
        match combo {
            Some(((tag, op, mut op2), at2)) => {
                op2.fuse = tag;
                sb_ops.push(SuperOp { op, at: at1, op2, at2 });
                k += 2;
            }
            None => {
                sb_ops.push(single(m1, at1));
                k += 1;
            }
        }
    }
}

fn alu_rr(op: AluOp) -> MOp {
    match op {
        AluOp::Add => MOp::AddRR,
        AluOp::Sub => MOp::SubRR,
        AluOp::Mul => MOp::MulRR,
        AluOp::Div => MOp::DivRR,
        AluOp::Rem => MOp::RemRR,
        AluOp::Divu => MOp::DivuRR,
        AluOp::Remu => MOp::RemuRR,
        AluOp::And => MOp::AndRR,
        AluOp::Or => MOp::OrRR,
        AluOp::Xor => MOp::XorRR,
        AluOp::Nor => MOp::NorRR,
        AluOp::Sll => MOp::SllRR,
        AluOp::Srl => MOp::SrlRR,
        AluOp::Sra => MOp::SraRR,
        AluOp::Slt => MOp::SltRR,
        AluOp::Sltu => MOp::SltuRR,
    }
}

fn alu_ri(op: AluOp) -> MOp {
    match op {
        AluOp::Add => MOp::AddRI,
        AluOp::Sub => MOp::SubRI,
        AluOp::Mul => MOp::MulRI,
        AluOp::Div => MOp::DivRI,
        AluOp::Rem => MOp::RemRI,
        AluOp::Divu => MOp::DivuRI,
        AluOp::Remu => MOp::RemuRI,
        AluOp::And => MOp::AndRI,
        AluOp::Or => MOp::OrRI,
        AluOp::Xor => MOp::XorRI,
        AluOp::Nor => MOp::NorRI,
        AluOp::Sll => MOp::SllRI,
        AluOp::Srl => MOp::SrlRI,
        AluOp::Sra => MOp::SraRI,
        AluOp::Slt => MOp::SltRI,
        AluOp::Sltu => MOp::SltuRI,
    }
}

fn branch_op(cond: CmpOp) -> MOp {
    match cond {
        CmpOp::Eq => MOp::Beq,
        CmpOp::Ne => MOp::Bne,
        CmpOp::Lt => MOp::Blt,
        CmpOp::Ge => MOp::Bge,
        CmpOp::Ltu => MOp::Bltu,
        CmpOp::Geu => MOp::Bgeu,
    }
}

#[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
fn decode_instr(instr: &Instr, fpool: &mut Vec<f64>) -> MicroOp {
    match *instr {
        Instr::Alu { op, rd, rs, rt } => MicroOp::regs(
            alu_rr(op),
            rd.index() as u8,
            rs.index() as u8,
            rt.index() as u8,
        ),
        Instr::AluImm { op, rd, rs, imm } => {
            MicroOp::imm(alu_ri(op), rd.index() as u8, rs.index() as u8, imm)
        }
        Instr::Li { rd, imm } => MicroOp::imm(MOp::Li, rd.index() as u8, 0, imm),
        Instr::Load {
            width,
            signed,
            rd,
            base,
            off,
        } => {
            let op = match (width, signed) {
                (MemWidth::Byte, true) => MOp::Lb,
                (MemWidth::Byte, false) => MOp::Lbu,
                (MemWidth::Half, true) => MOp::Lh,
                (MemWidth::Half, false) => MOp::Lhu,
                (MemWidth::Word, _) => MOp::Lw,
            };
            MicroOp::imm(op, rd.index() as u8, base.index() as u8, off)
        }
        Instr::Store {
            width,
            rs,
            base,
            off,
        } => {
            let op = match width {
                MemWidth::Byte => MOp::Sb,
                MemWidth::Half => MOp::Sh,
                MemWidth::Word => MOp::Sw,
            };
            MicroOp::imm(op, rs.index() as u8, base.index() as u8, off)
        }
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => MicroOp::imm(
            branch_op(cond),
            rs.index() as u8,
            rt.index() as u8,
            target as i32,
        ),
        Instr::Jump { target } => MicroOp::imm(MOp::Jump, 0, 0, target as i32),
        Instr::Call { target } => MicroOp::imm(
            MOp::Call,
            certa_isa::reg::RA.index() as u8,
            0,
            target as i32,
        ),
        Instr::JumpReg { rs } => MicroOp::regs(MOp::JumpReg, rs.index() as u8, 0, 0),
        Instr::Fpu { op, fd, fs, ft } => {
            let m = match op {
                FpuOp::Add => MOp::FAdd,
                FpuOp::Sub => MOp::FSub,
                FpuOp::Mul => MOp::FMul,
                FpuOp::Div => MOp::FDiv,
                FpuOp::Min => MOp::FMin,
                FpuOp::Max => MOp::FMax,
            };
            MicroOp::regs(m, fd.index() as u8, fs.index() as u8, ft.index() as u8)
        }
        Instr::FMov { fd, fs } => MicroOp::regs(MOp::FMov, fd.index() as u8, fs.index() as u8, 0),
        Instr::FAbs { fd, fs } => MicroOp::regs(MOp::FAbs, fd.index() as u8, fs.index() as u8, 0),
        Instr::FNeg { fd, fs } => MicroOp::regs(MOp::FNeg, fd.index() as u8, fs.index() as u8, 0),
        Instr::FSqrt { fd, fs } => {
            MicroOp::regs(MOp::FSqrt, fd.index() as u8, fs.index() as u8, 0)
        }
        Instr::FLi { fd, value } => {
            let idx = fpool.len() as i32;
            fpool.push(value);
            MicroOp::imm(MOp::FLi, fd.index() as u8, 0, idx)
        }
        Instr::FLoad { fd, base, off } => {
            MicroOp::imm(MOp::FLd, fd.index() as u8, base.index() as u8, off)
        }
        Instr::FStore { fs, base, off } => {
            MicroOp::imm(MOp::FSd, fs.index() as u8, base.index() as u8, off)
        }
        Instr::CvtIF { fd, rs } => MicroOp::regs(MOp::CvtIF, fd.index() as u8, rs.index() as u8, 0),
        Instr::CvtFI { rd, fs } => MicroOp::regs(MOp::CvtFI, rd.index() as u8, fs.index() as u8, 0),
        Instr::FCmp { op, rd, fs, ft } => {
            let m = match op {
                FCmpOp::Eq => MOp::FCeq,
                FCmpOp::Lt => MOp::FClt,
                FCmpOp::Le => MOp::FCle,
            };
            MicroOp::regs(m, rd.index() as u8, fs.index() as u8, ft.index() as u8)
        }
        Instr::Halt => MicroOp::new(MOp::Halt),
        Instr::Nop => MicroOp::new(MOp::Nop),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_isa::reg;

    /// The documented ALU discriminant layout: decoding `AluOp::ALL[i]`
    /// lands on discriminant `i` (register-register) / `16 + i`
    /// (register-immediate).
    #[test]
    fn alu_discriminants_follow_all_order() {
        for (i, &op) in AluOp::ALL.iter().enumerate() {
            assert_eq!(alu_rr(op) as u8, i as u8, "{op:?} RR");
            assert_eq!(alu_ri(op) as u8, 16 + i as u8, "{op:?} RI");
        }
    }

    #[test]
    fn micro_op_is_12_bytes() {
        assert_eq!(std::mem::size_of::<MicroOp>(), 12);
    }

    #[test]
    fn decode_is_one_to_one_with_code() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 5);
        a.addi(reg::T0, reg::T0, 1);
        a.fli(reg::F0, 2.5);
        a.fli(reg::F1, -1.0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.len(), p.code.len());
        assert_eq!(d.fpool(), &[2.5, -1.0]);
        assert_eq!(d.ops()[0].op, MOp::Li);
        assert_eq!(d.ops()[1].op, MOp::AddRI);
        assert_eq!(d.ops()[4].op, MOp::Halt);
    }

    #[test]
    fn fusion_marks_fall_through_heads_only() {
        let mut a = certa_asm::Asm::new();
        let buf = a.data_zero(8);
        a.func("main", false);
        a.la(reg::T0, buf); //  0: li     — head
        a.lw(reg::T1, 0, reg::T0); //  1: load   — head (fall-through on success)
        a.addi(reg::T1, reg::T1, 1); //  2: alui   — head
        a.bnez(reg::T1, "skip"); //  3: branch — head (fall-through when not taken)
        a.j("main"); //  4: jump   — never falls through
        a.label("skip");
        a.nop(); //  5: nop    — head
        a.halt(); //  6: halt   — never falls through (and last)
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        let flags: Vec<u8> = d.ops().iter().map(|m| m.fuse).collect();
        assert_eq!(flags, [1, 1, 1, 1, 0, 1, 0]);
        assert_eq!(d.fused_pairs(), 5);
    }

    #[test]
    fn superblocks_cover_block_entries_only() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 3); //  0: block entry (program entry)
        a.label("loop");
        a.addi(reg::T0, reg::T0, -1); //  1: block entry (branch target)
        a.bnez(reg::T0, "loop"); //  2
        a.halt(); //  3: block entry (after branch)
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        assert!(d.superblock_count() >= 2);
        // Entries only at leaders: 0, 1, 3.
        let entries: Vec<usize> = (0..d.len())
            .filter(|&i| d.sb_entry()[i] != 0)
            .collect();
        assert!(entries.contains(&0));
        assert!(entries.contains(&1));
        assert!(!entries.contains(&2), "mid-block pc is never a trace entry");
    }

    #[test]
    fn traces_follow_jumps_and_stop_on_cycles() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1); // 0
        a.j("tail"); // 1: traced through
        a.label("dead");
        a.nop(); // 2
        a.label("tail");
        a.addi(reg::T0, reg::T0, 1); // 3
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        // The trace from instruction 0 follows the jump into `tail` and
        // ends at the halt: instructions {0, 1, 3, 4}.
        let id = d.sb_entry()[0];
        assert!(id != 0, "entry block earns a trace");
        let info = d.superblocks()[(id - 1) as usize];
        assert_eq!(info.instrs, 4);
        let ats: Vec<u32> = d.sb_ops()[info.start as usize..(info.start + info.elems) as usize]
            .iter()
            .flat_map(|s| {
                if s.op2.fuse == COMBO_NONE {
                    vec![s.at]
                } else {
                    vec![s.at, s.at2]
                }
            })
            .collect();
        assert_eq!(ats, [0, 1, 3, 4]);

        // A self-loop cannot trace forever.
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.label("spin");
        a.j("spin");
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        assert!(d.superblock_count() <= 1);
        assert!(d.superblock_ops() <= 1);
    }

    #[test]
    fn traces_follow_calls_and_returns() {
        let mut a = certa_asm::Asm::new();
        a.func("sq", false);
        a.mul(reg::V0, reg::A0, reg::A0); // 0
        a.ret(); // 1
        a.endfunc();
        a.func("main", false);
        a.li(reg::A0, 4); // 2 (entry)
        a.call("sq"); // 3
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        let id = d.sb_entry()[2];
        assert!(id != 0);
        let info = d.superblocks()[(id - 1) as usize];
        // li, call, callee mul, callee ret, then the return point (halt).
        assert_eq!(info.instrs, 5);
        let first = d.sb_ops()[info.start as usize];
        assert_eq!(first.at, 2);
    }

    #[test]
    fn pairing_covers_alu_chains_and_normalizes_li() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 7); // 0: li -> AddRI against $zero
        a.addi(reg::T0, reg::T0, 1); // 1
        a.add(reg::T1, reg::T0, reg::T0); // 2
        a.sub(reg::T1, reg::T1, reg::T0); // 3
        a.halt(); // 4
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        let id = d.sb_entry()[0];
        let info = d.superblocks()[(id - 1) as usize];
        assert_eq!(info.instrs, 5);
        // Four ALU-class ops pair into two combo elements, plus the halt.
        assert_eq!(info.elems, 3);
        let body = &d.sb_ops()[info.start as usize..(info.start + info.elems) as usize];
        assert_eq!(body[0].op2.fuse, COMBO_ALU_ALU);
        assert_eq!(body[0].op.op, MOp::AddRI, "li normalized to addi-from-zero");
        assert_eq!(body[0].op.b, 0);
        assert_eq!(body[1].op2.fuse, COMBO_ALU_ALU);
        assert_eq!(body[2].op2.fuse, COMBO_NONE);
    }

    #[test]
    fn disabled_policy_builds_no_superblocks() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1);
        a.addi(reg::T0, reg::T0, 1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(&p, &SuperblockPolicy::disabled());
        assert_eq!(d.superblock_count(), 0);
        assert!(d.sb_entry().iter().all(|&e| e == 0));
    }

    #[test]
    fn seeded_policy_skips_cold_blocks() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1); // 0: hot
        a.addi(reg::T0, reg::T0, 1); // 1
        a.beqz(reg::T0, "cold"); // 2
        a.halt(); // 3
        a.label("cold");
        a.nop(); // 4: never executed in the golden run
        a.nop(); // 5
        a.halt(); // 6
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut counts = vec![1u64; p.code.len()];
        counts[4] = 0;
        counts[5] = 0;
        counts[6] = 0;
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::seeded(counts)
            },
        );
        assert!(d.sb_entry()[0] != 0, "hot entry gets a trace");
        assert_eq!(d.sb_entry()[4], 0, "cold block is skipped");
    }

    #[test]
    fn sequential_flags_reflect_layout() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.fli(reg::F0, 1.0); // 0 (float: never paired)
        a.fli(reg::F1, 2.0); // 1
        a.j("next"); // 2: traced through — non-sequential continuation
        a.label("dead");
        a.nop(); // 3
        a.label("next");
        a.fli(reg::F2, 3.0); // 4
        a.halt(); // 5
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy {
                min_len: 1,
                ..SuperblockPolicy::default()
            },
        );
        let id = d.sb_entry()[0];
        let info = d.superblocks()[(id - 1) as usize];
        let body = &d.sb_ops()[info.start as usize..(info.start + info.elems) as usize];
        // 0 -> 1 sequential; 1 -> 2 sequential; 2 (jump) -> 4 is NOT
        // sequential (the jump continues via the dynamic-target rule);
        // 4 -> 5 sequential; 5 (halt) terminal.
        let flags: Vec<u8> = body.iter().map(|s| s.op.fuse).collect();
        assert_eq!(flags, [1, 1, 0, 1, 0]);
    }

    #[test]
    fn last_instruction_is_never_a_head() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1);
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.ops()[0].fuse, 0, "no successor to fuse with");
    }
}

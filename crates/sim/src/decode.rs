//! The predecode layer: lowering [`certa_isa::Instr`] into a dense,
//! operand-resolved micro-op array the dispatch loop can execute without
//! re-extracting enum payloads on every dynamic instruction.
//!
//! # Lowering
//!
//! [`DecodedProgram::new`] walks the instruction stream once and produces
//! one [`MicroOp`] per instruction:
//!
//! * register operands become raw `u8` indices (no newtype unwrapping in
//!   the hot loop),
//! * branch/jump/call targets and memory offsets live in one `i32`
//!   immediate slot,
//! * sub-operation selectors (ALU op, access width, sign extension, branch
//!   condition, FPU op) are folded into the opcode byte itself, so dispatch
//!   is a single flat match,
//! * `f64` immediates are spilled to a constant pool ([`MicroOp::imm`]
//!   indexes it), keeping every micro-op a fixed 12 bytes.
//!
//! The array is strictly 1:1 with `Program::code`: micro-op `i` is
//! instruction `i`, so the architectural `pc`, branch targets, profiling
//! indices, and [`WritebackHook`](crate::WritebackHook) instruction indices
//! are unchanged by predecoding.
//!
//! # Fusion
//!
//! A second pass marks **fused pair heads**: any instruction that can fall
//! through ([`certa_isa::Instr::can_fall_through`]) to an existing
//! successor. When the head actually does fall through at runtime, the
//! dispatch loop retires its successor in the same iteration, skipping one
//! fetch/bounds-check/loop-latch round trip.
//!
//! The assembler's common idioms — compare + branch, address compute +
//! load/store, `li` + ALU — are the pairs this hits on every loop
//! iteration, and in straight-line bodies nearly every instruction is
//! covered.
//!
//! Because the array stays 1:1, fusion needs no branch-target analysis: a
//! dynamic jump landing on the *second* half of a pair simply executes that
//! slot's ordinary micro-op. The invariants fusion must preserve (and that
//! the differential suite checks) are:
//!
//! * both halves bump `icount` and per-instruction `exec_counts`
//!   individually,
//! * every intermediate writeback — including the head's — flows through
//!   the [`WritebackHook`](crate::WritebackHook), so fault-injection sites
//!   are unchanged,
//! * the second half only retires when the head *fell through* — a taken
//!   branch, crash, or halt in the head ends the iteration exactly as
//!   unfused execution would,
//! * a pair never straddles a watchdog or [`run_until`]
//!   boundary: when the second half would cross it, the head executes
//!   alone as an ordinary micro-op.
//!
//! [`run_until`]: crate::Machine::run_until

use certa_isa::{AluOp, CmpOp, FCmpOp, FpuOp, Instr, MemWidth, Program};

/// Micro-op opcode with every sub-operation selector folded in.
///
/// The dispatch loop matches each variant with its own arm; the ALU block
/// is laid out contiguously in [`AluOp::ALL`] order (register-register
/// forms first, then register-immediate) purely as a reading aid, with a
/// unit test pinning the correspondence.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MOp {
    // 0..=15: register-register ALU, in AluOp::ALL order.
    AddRR = 0,
    SubRR,
    MulRR,
    DivRR,
    RemRR,
    DivuRR,
    RemuRR,
    AndRR,
    OrRR,
    XorRR,
    NorRR,
    SllRR,
    SrlRR,
    SraRR,
    SltRR,
    SltuRR,
    // 16..=31: register-immediate ALU, in AluOp::ALL order.
    AddRI,
    SubRI,
    MulRI,
    DivRI,
    RemRI,
    DivuRI,
    RemuRI,
    AndRI,
    OrRI,
    XorRI,
    NorRI,
    SllRI,
    SrlRI,
    SraRI,
    SltRI,
    SltuRI,
    /// `a = imm`.
    Li,
    /// Sign-extending byte load: `a = sx8(mem[rb + imm])`.
    Lb,
    /// Zero-extending byte load.
    Lbu,
    /// Sign-extending halfword load.
    Lh,
    /// Zero-extending halfword load.
    Lhu,
    /// Word load.
    Lw,
    /// Byte store: `mem[rb + imm] = ra`.
    Sb,
    /// Halfword store.
    Sh,
    /// Word store.
    Sw,
    /// Branch to `imm` if `ra == rb`.
    Beq,
    /// Branch if `ra != rb`.
    Bne,
    /// Branch if `ra < rb` (signed).
    Blt,
    /// Branch if `ra >= rb` (signed).
    Bge,
    /// Branch if `ra < rb` (unsigned).
    Bltu,
    /// Branch if `ra >= rb` (unsigned).
    Bgeu,
    /// Unconditional jump to `imm`.
    Jump,
    /// Call: `$ra = pc + 1`, jump to `imm` (`a` carries the RA index).
    Call,
    /// Indirect jump to the value of register `a`.
    JumpReg,
    /// `fa = fb + fc`.
    FAdd,
    /// `fa = fb - fc`.
    FSub,
    /// `fa = fb * fc`.
    FMul,
    /// `fa = fb / fc`.
    FDiv,
    /// `fa = min(fb, fc)`.
    FMin,
    /// `fa = max(fb, fc)`.
    FMax,
    /// `fa = fb`.
    FMov,
    /// `fa = |fb|`.
    FAbs,
    /// `fa = -fb`.
    FNeg,
    /// `fa = sqrt(fb)`.
    FSqrt,
    /// `fa = fpool[imm]`.
    FLi,
    /// `fa = mem_f64[rb + imm]`.
    FLd,
    /// `mem_f64[rb + imm] = fa`.
    FSd,
    /// `fa = rb as i32 as f64`.
    CvtIF,
    /// `a = fb as i32` (truncating, saturating).
    CvtFI,
    /// `a = (fb == fc) as u32`.
    FCeq,
    /// `a = (fb < fc) as u32`.
    FClt,
    /// `a = (fb <= fc) as u32`.
    FCle,
    /// Stop successfully.
    Halt,
    /// No operation.
    Nop,
}

/// One predecoded instruction: folded opcode, raw register indices, one
/// immediate. 12 bytes, `Copy`, fetched as a unit by the dispatch loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    /// Folded opcode.
    pub(crate) op: MOp,
    /// Non-zero when this op heads a fused pair (see the module docs); the
    /// second half is always the micro-op at the next index.
    pub(crate) fuse: u8,
    /// First register field (destination, store source, or branch lhs).
    pub(crate) a: u8,
    /// Second register field (source / base / branch rhs).
    pub(crate) b: u8,
    /// Third register field (second ALU/FPU source).
    pub(crate) c: u8,
    /// Immediate: ALU immediate, memory offset, branch/jump target, or
    /// `f64` constant-pool index.
    pub(crate) imm: i32,
}

impl MicroOp {
    fn new(op: MOp) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a: 0,
            b: 0,
            c: 0,
            imm: 0,
        }
    }

    fn regs(op: MOp, a: u8, b: u8, c: u8) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a,
            b,
            c,
            imm: 0,
        }
    }

    fn imm(op: MOp, a: u8, b: u8, imm: i32) -> Self {
        MicroOp {
            op,
            fuse: 0,
            a,
            b,
            c: 0,
            imm,
        }
    }
}

/// A program lowered to the micro-op form the dispatch loop executes: a
/// dense array strictly 1:1 with `Program::code`, plus the `f64` constant
/// pool. Immutable once built; cheap to share across trial machines via
/// [`std::sync::Arc`] (the fault campaign decodes once per campaign).
#[derive(Debug)]
pub struct DecodedProgram {
    ops: Vec<MicroOp>,
    fpool: Vec<f64>,
    fused_pairs: usize,
}

impl DecodedProgram {
    /// Lowers `program` (decode pass + fusion pass; one linear scan each).
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut fpool = Vec::new();
        let mut ops: Vec<MicroOp> = program
            .code
            .iter()
            .map(|instr| decode_instr(instr, &mut fpool))
            .collect();

        // Fusion pass: mark every op that can fall through to an existing
        // successor as a pair head. The dispatch loop retires the successor
        // in the same iteration whenever the head actually fell through.
        let mut fused_pairs = 0;
        for i in 0..ops.len().saturating_sub(1) {
            if program.code[i].can_fall_through() {
                ops[i].fuse = 1;
                fused_pairs += 1;
            }
        }
        DecodedProgram {
            ops,
            fpool,
            fused_pairs,
        }
    }

    /// Number of micro-ops (equal to the source program's code length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of static fused pair heads (diagnostics and benches).
    #[must_use]
    pub fn fused_pairs(&self) -> usize {
        self.fused_pairs
    }

    pub(crate) fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    pub(crate) fn fpool(&self) -> &[f64] {
        &self.fpool
    }
}

fn alu_rr(op: AluOp) -> MOp {
    match op {
        AluOp::Add => MOp::AddRR,
        AluOp::Sub => MOp::SubRR,
        AluOp::Mul => MOp::MulRR,
        AluOp::Div => MOp::DivRR,
        AluOp::Rem => MOp::RemRR,
        AluOp::Divu => MOp::DivuRR,
        AluOp::Remu => MOp::RemuRR,
        AluOp::And => MOp::AndRR,
        AluOp::Or => MOp::OrRR,
        AluOp::Xor => MOp::XorRR,
        AluOp::Nor => MOp::NorRR,
        AluOp::Sll => MOp::SllRR,
        AluOp::Srl => MOp::SrlRR,
        AluOp::Sra => MOp::SraRR,
        AluOp::Slt => MOp::SltRR,
        AluOp::Sltu => MOp::SltuRR,
    }
}

fn alu_ri(op: AluOp) -> MOp {
    match op {
        AluOp::Add => MOp::AddRI,
        AluOp::Sub => MOp::SubRI,
        AluOp::Mul => MOp::MulRI,
        AluOp::Div => MOp::DivRI,
        AluOp::Rem => MOp::RemRI,
        AluOp::Divu => MOp::DivuRI,
        AluOp::Remu => MOp::RemuRI,
        AluOp::And => MOp::AndRI,
        AluOp::Or => MOp::OrRI,
        AluOp::Xor => MOp::XorRI,
        AluOp::Nor => MOp::NorRI,
        AluOp::Sll => MOp::SllRI,
        AluOp::Srl => MOp::SrlRI,
        AluOp::Sra => MOp::SraRI,
        AluOp::Slt => MOp::SltRI,
        AluOp::Sltu => MOp::SltuRI,
    }
}

fn branch_op(cond: CmpOp) -> MOp {
    match cond {
        CmpOp::Eq => MOp::Beq,
        CmpOp::Ne => MOp::Bne,
        CmpOp::Lt => MOp::Blt,
        CmpOp::Ge => MOp::Bge,
        CmpOp::Ltu => MOp::Bltu,
        CmpOp::Geu => MOp::Bgeu,
    }
}

#[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
fn decode_instr(instr: &Instr, fpool: &mut Vec<f64>) -> MicroOp {
    match *instr {
        Instr::Alu { op, rd, rs, rt } => MicroOp::regs(
            alu_rr(op),
            rd.index() as u8,
            rs.index() as u8,
            rt.index() as u8,
        ),
        Instr::AluImm { op, rd, rs, imm } => {
            MicroOp::imm(alu_ri(op), rd.index() as u8, rs.index() as u8, imm)
        }
        Instr::Li { rd, imm } => MicroOp::imm(MOp::Li, rd.index() as u8, 0, imm),
        Instr::Load {
            width,
            signed,
            rd,
            base,
            off,
        } => {
            let op = match (width, signed) {
                (MemWidth::Byte, true) => MOp::Lb,
                (MemWidth::Byte, false) => MOp::Lbu,
                (MemWidth::Half, true) => MOp::Lh,
                (MemWidth::Half, false) => MOp::Lhu,
                (MemWidth::Word, _) => MOp::Lw,
            };
            MicroOp::imm(op, rd.index() as u8, base.index() as u8, off)
        }
        Instr::Store {
            width,
            rs,
            base,
            off,
        } => {
            let op = match width {
                MemWidth::Byte => MOp::Sb,
                MemWidth::Half => MOp::Sh,
                MemWidth::Word => MOp::Sw,
            };
            MicroOp::imm(op, rs.index() as u8, base.index() as u8, off)
        }
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => MicroOp::imm(
            branch_op(cond),
            rs.index() as u8,
            rt.index() as u8,
            target as i32,
        ),
        Instr::Jump { target } => MicroOp::imm(MOp::Jump, 0, 0, target as i32),
        Instr::Call { target } => MicroOp::imm(
            MOp::Call,
            certa_isa::reg::RA.index() as u8,
            0,
            target as i32,
        ),
        Instr::JumpReg { rs } => MicroOp::regs(MOp::JumpReg, rs.index() as u8, 0, 0),
        Instr::Fpu { op, fd, fs, ft } => {
            let m = match op {
                FpuOp::Add => MOp::FAdd,
                FpuOp::Sub => MOp::FSub,
                FpuOp::Mul => MOp::FMul,
                FpuOp::Div => MOp::FDiv,
                FpuOp::Min => MOp::FMin,
                FpuOp::Max => MOp::FMax,
            };
            MicroOp::regs(m, fd.index() as u8, fs.index() as u8, ft.index() as u8)
        }
        Instr::FMov { fd, fs } => MicroOp::regs(MOp::FMov, fd.index() as u8, fs.index() as u8, 0),
        Instr::FAbs { fd, fs } => MicroOp::regs(MOp::FAbs, fd.index() as u8, fs.index() as u8, 0),
        Instr::FNeg { fd, fs } => MicroOp::regs(MOp::FNeg, fd.index() as u8, fs.index() as u8, 0),
        Instr::FSqrt { fd, fs } => {
            MicroOp::regs(MOp::FSqrt, fd.index() as u8, fs.index() as u8, 0)
        }
        Instr::FLi { fd, value } => {
            let idx = fpool.len() as i32;
            fpool.push(value);
            MicroOp::imm(MOp::FLi, fd.index() as u8, 0, idx)
        }
        Instr::FLoad { fd, base, off } => {
            MicroOp::imm(MOp::FLd, fd.index() as u8, base.index() as u8, off)
        }
        Instr::FStore { fs, base, off } => {
            MicroOp::imm(MOp::FSd, fs.index() as u8, base.index() as u8, off)
        }
        Instr::CvtIF { fd, rs } => MicroOp::regs(MOp::CvtIF, fd.index() as u8, rs.index() as u8, 0),
        Instr::CvtFI { rd, fs } => MicroOp::regs(MOp::CvtFI, rd.index() as u8, fs.index() as u8, 0),
        Instr::FCmp { op, rd, fs, ft } => {
            let m = match op {
                FCmpOp::Eq => MOp::FCeq,
                FCmpOp::Lt => MOp::FClt,
                FCmpOp::Le => MOp::FCle,
            };
            MicroOp::regs(m, rd.index() as u8, fs.index() as u8, ft.index() as u8)
        }
        Instr::Halt => MicroOp::new(MOp::Halt),
        Instr::Nop => MicroOp::new(MOp::Nop),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_isa::reg;

    /// The documented ALU discriminant layout: decoding `AluOp::ALL[i]`
    /// lands on discriminant `i` (register-register) / `16 + i`
    /// (register-immediate).
    #[test]
    fn alu_discriminants_follow_all_order() {
        for (i, &op) in AluOp::ALL.iter().enumerate() {
            assert_eq!(alu_rr(op) as u8, i as u8, "{op:?} RR");
            assert_eq!(alu_ri(op) as u8, 16 + i as u8, "{op:?} RI");
        }
    }

    #[test]
    fn micro_op_is_12_bytes() {
        assert_eq!(std::mem::size_of::<MicroOp>(), 12);
    }

    #[test]
    fn decode_is_one_to_one_with_code() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 5);
        a.addi(reg::T0, reg::T0, 1);
        a.fli(reg::F0, 2.5);
        a.fli(reg::F1, -1.0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.len(), p.code.len());
        assert_eq!(d.fpool(), &[2.5, -1.0]);
        assert_eq!(d.ops()[0].op, MOp::Li);
        assert_eq!(d.ops()[1].op, MOp::AddRI);
        assert_eq!(d.ops()[4].op, MOp::Halt);
    }

    #[test]
    fn fusion_marks_fall_through_heads_only() {
        let mut a = certa_asm::Asm::new();
        let buf = a.data_zero(8);
        a.func("main", false);
        a.la(reg::T0, buf); //  0: li     — head
        a.lw(reg::T1, 0, reg::T0); //  1: load   — head (fall-through on success)
        a.addi(reg::T1, reg::T1, 1); //  2: alui   — head
        a.bnez(reg::T1, "skip"); //  3: branch — head (fall-through when not taken)
        a.j("main"); //  4: jump   — never falls through
        a.label("skip");
        a.nop(); //  5: nop    — head
        a.halt(); //  6: halt   — never falls through (and last)
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        let flags: Vec<u8> = d.ops().iter().map(|m| m.fuse).collect();
        assert_eq!(flags, [1, 1, 1, 1, 0, 1, 0]);
        assert_eq!(d.fused_pairs(), 5);
    }

    #[test]
    fn last_instruction_is_never_a_head() {
        let mut a = certa_asm::Asm::new();
        a.func("main", false);
        a.li(reg::T0, 1);
        a.endfunc();
        let p = a.assemble().unwrap();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.ops()[0].fuse, 0, "no successor to fuse with");
    }
}

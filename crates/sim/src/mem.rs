//! Paged guest memory with copy-on-write snapshot sharing.
//!
//! The memory image is a table of 4 KiB pages. Each slot is either
//! [`Owned`](PageSlot::Owned) — a `Box` this machine may write through
//! directly — or [`Shared`](PageSlot::Shared) — an `Arc` co-owned with one
//! or more [`Snapshot`](crate::Snapshot)s (and, transitively, with other
//! machines restored from them). The first write to a shared page copies
//! it into an owned box (the copy-on-write step); every later write to
//! that page is direct. The `Owned`/`Shared` discriminant doubles as the
//! write-permission bit, so the store fast path never touches an atomic
//! reference count: it is one slot load, one (highly predictable) tag
//! branch, and the byte write.
//!
//! What the representation buys:
//!
//! * **Capture is O(written pages)**: taking a snapshot materializes each
//!   owned page into a fresh `Arc` (one 4 KiB copy) and merely bumps the
//!   reference count of every already-shared page — untouched memory is
//!   never duplicated, no matter how many checkpoints co-exist.
//! * **Restore is O(dirty pages) of pointer swaps**: rolling back to a
//!   snapshot replaces each written slot with a clone of the snapshot's
//!   `Arc`. No page bytes move at all; the trial pays for a page copy
//!   only when (and if) it writes to it again.
//! * **Comparison gets a pointer fast path**: two images holding the same
//!   `Arc` for a page are bit-identical there by construction, which makes
//!   snapshot page-diffs and the campaign's reconvergence probe cheap.
//!
//! Displaced owned boxes are recycled through a spare pool, so the
//! steady-state trial loop (write a working set, roll back, repeat) does
//! not touch the allocator.
//!
//! Guest accesses are aligned and at most 8 bytes, so a single access
//! never spans two pages (the alignment check precedes the page lookup).
//! Host-side accesses (`Machine::read_bytes`/`write_bytes`) may span
//! pages and go through the `copy_out`/`copy_in` loops instead.

use std::sync::Arc;

use certa_asm::DATA_BASE;
use certa_isa::MemWidth;

use crate::machine::CrashKind;

/// Granularity of page sharing and dirty tracking.
pub(crate) const PAGE_SIZE: usize = 4096;

/// One guest page.
pub(crate) type PageBuf = [u8; PAGE_SIZE];

/// One slot of the page table: writable in place, or shared with
/// snapshots and copied on first write.
#[derive(Clone)]
enum PageSlot {
    /// Uniquely held: stores write through directly.
    Owned(Box<PageBuf>),
    /// Co-owned with snapshots: read-only until a write copies it.
    Shared(Arc<PageBuf>),
}

impl PageSlot {
    #[inline(always)]
    fn bytes(&self) -> &PageBuf {
        match self {
            PageSlot::Owned(b) => b,
            PageSlot::Shared(a) => a,
        }
    }
}

/// The paged copy-on-write memory image of a machine, including the dirty
/// bitset (one bit per page, set by every guest store and host write since
/// the last restore/capture point).
///
/// Invariant: outside the construction window (before the first
/// capture/restore), a page is `Owned` **iff** its dirty bit is set — a
/// restore swaps every dirty slot back to `Shared`, and a write both
/// marks the page dirty and makes it owned.
pub(crate) struct PagedMem {
    slots: Vec<PageSlot>,
    /// Addressable bytes. May end mid-page; the tail of the last page is
    /// zero padding no guest or host access can reach.
    len: usize,
    /// One bit per page, set by every write since the last restore point.
    dirty: Vec<u64>,
    /// Recycled owned boxes: restores push displaced pages here, writes
    /// pop instead of allocating. Never cloned (a clone starts empty).
    spare: Vec<Box<PageBuf>>,
}

impl Clone for PagedMem {
    fn clone(&self) -> Self {
        PagedMem {
            slots: self.slots.clone(),
            len: self.len,
            dirty: self.dirty.clone(),
            spare: Vec::new(),
        }
    }
}

impl std::fmt::Debug for PagedMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedMem")
            .field("len", &self.len)
            .field("pages", &self.slots.len())
            .field("dirty_pages", &self.dirty_page_count())
            .finish_non_exhaustive()
    }
}

/// Number of `u64` bitset words needed for `pages` pages.
fn dirty_words(pages: usize) -> usize {
    pages.div_ceil(64)
}

impl PagedMem {
    /// An all-zero image: every slot shares one zero page, so construction
    /// is O(pages) reference bumps, not O(len) zeroing.
    pub(crate) fn new_zeroed(len: usize) -> Self {
        let pages = len.div_ceil(PAGE_SIZE);
        let zero: Arc<PageBuf> = Arc::new([0u8; PAGE_SIZE]);
        PagedMem {
            slots: vec![PageSlot::Shared(zero); pages],
            len,
            dirty: vec![0u64; dirty_words(pages)],
            spare: Vec::new(),
        }
    }

    /// An image sharing every page of a snapshot (O(pages) reference
    /// bumps; the machine copies a page only when it first writes to it).
    pub(crate) fn from_shared(pages: &[Arc<PageBuf>], len: usize) -> Self {
        PagedMem {
            slots: pages.iter().map(|a| PageSlot::Shared(Arc::clone(a))).collect(),
            len,
            dirty: vec![0u64; dirty_words(pages.len())],
            spare: Vec::new(),
        }
    }

    /// Addressable bytes.
    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of pages in the table.
    pub(crate) fn page_count(&self) -> usize {
        self.slots.len()
    }

    /// Read access to one page.
    #[inline(always)]
    fn page(&self, page: usize) -> &PageBuf {
        self.slots[page].bytes()
    }

    /// Write access to one page: marks it dirty and copies it out of
    /// sharing if needed (the copy-on-write step). The hot already-owned
    /// path is a bitset OR, a slot load, and a predictable tag branch.
    #[inline(always)]
    fn page_for_write(&mut self, page: usize) -> &mut PageBuf {
        self.dirty[page >> 6] |= 1 << (page & 63);
        let slot = &mut self.slots[page];
        if let PageSlot::Shared(a) = &*slot {
            let mut buf = self
                .spare
                .pop()
                .unwrap_or_else(|| Box::new([0u8; PAGE_SIZE]));
            buf.copy_from_slice(&**a);
            *slot = PageSlot::Owned(buf);
        }
        match slot {
            PageSlot::Owned(b) => b,
            PageSlot::Shared(_) => unreachable!("page was just made owned"),
        }
    }

    /// Whether a page's dirty bit is set.
    #[inline(always)]
    pub(crate) fn is_dirty(&self, page: usize) -> bool {
        self.dirty[page >> 6] & (1 << (page & 63)) != 0
    }

    /// Number of pages written since the last restore/capture point.
    pub(crate) fn dirty_page_count(&self) -> usize {
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears the dirty bitset (construction-time use; restores clear it
    /// as they swap).
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    /// Calls `f` for every dirty page index.
    #[inline]
    pub(crate) fn for_each_dirty(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f((w << 6) + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }

    /// The shared `Arc` behind a page, if the slot is in the shared state.
    #[inline(always)]
    pub(crate) fn shared_page(&self, page: usize) -> Option<&Arc<PageBuf>> {
        match &self.slots[page] {
            PageSlot::Shared(a) => Some(a),
            PageSlot::Owned(_) => None,
        }
    }

    /// Current bytes of one page (read-only).
    #[inline(always)]
    pub(crate) fn page_bytes(&self, page: usize) -> &PageBuf {
        self.page(page)
    }

    /// Swaps one slot to share a snapshot's page, recycling a displaced
    /// owned box. The page's dirty bit is cleared by the caller (restores
    /// clear whole words as they scan).
    #[inline]
    fn share_slot(&mut self, page: usize, arc: &Arc<PageBuf>) {
        let old = std::mem::replace(&mut self.slots[page], PageSlot::Shared(Arc::clone(arc)));
        if let PageSlot::Owned(b) = old {
            self.spare.push(b);
        }
    }

    /// Restore step: swaps every **dirty** slot to the matching snapshot
    /// page (pointer swaps, no byte copies) and clears the dirty set.
    ///
    /// Correctness contract (the dirty-tracking invariant): every clean
    /// page is already bit-identical to `pages` — the caller only invokes
    /// this when the machine's memory was last synchronized with this very
    /// snapshot.
    pub(crate) fn restore_dirty_from(&mut self, pages: &[Arc<PageBuf>]) {
        for w in 0..self.dirty.len() {
            let mut bits = self.dirty[w];
            while bits != 0 {
                let page = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.share_slot(page, &pages[page]);
            }
            self.dirty[w] = 0;
        }
    }

    /// Restore step for checkpoint hops: like [`Self::restore_dirty_from`]
    /// but additionally swaps every page in `changed_pages` (the pages on
    /// which the machine's base snapshot and the target snapshot differ).
    /// Out-of-range indices are ignored.
    pub(crate) fn restore_diff_from(&mut self, pages: &[Arc<PageBuf>], changed_pages: &[u32]) {
        self.restore_dirty_from(pages);
        for &page in changed_pages {
            let page = page as usize;
            if page < self.slots.len() {
                self.share_slot(page, &pages[page]);
            }
        }
    }

    /// Full restore: swaps **every** slot (O(pages) pointer swaps — still
    /// no byte copies) and clears the dirty set.
    pub(crate) fn restore_all_from(&mut self, pages: &[Arc<PageBuf>]) {
        for (slot, arc) in self.slots.iter_mut().zip(pages) {
            let old = std::mem::replace(slot, PageSlot::Shared(Arc::clone(arc)));
            if let PageSlot::Owned(b) = old {
                self.spare.push(b);
            }
        }
        self.dirty.fill(0);
    }

    /// Snapshot capture: converts every owned page into a shared `Arc`
    /// (one 4 KiB copy each — the only bytes a capture ever copies),
    /// returns the full page table as `Arc` clones plus per-page hashes,
    /// and clears the dirty set (the machine is now bit-identical to the
    /// capture, which becomes its new base).
    ///
    /// `base_hashes` are the hashes of the machine's previous base
    /// snapshot: clean pages are bit-identical to that base, so their
    /// hashes are reused and only dirty pages are rehashed. Without a
    /// matching base every page is hashed.
    ///
    /// The second return value is the number of bytes materialized (owned
    /// pages copied into fresh `Arc`s) — the true incremental cost of the
    /// capture, reported by campaigns as checkpoint capture bytes.
    pub(crate) fn capture(
        &mut self,
        base_hashes: Option<&Arc<[u64]>>,
    ) -> (Vec<Arc<PageBuf>>, Arc<[u64]>, u64) {
        let mut fresh = 0u64;
        for slot in &mut self.slots {
            if let PageSlot::Owned(b) = slot {
                fresh += PAGE_SIZE as u64;
                let arc: Arc<PageBuf> = Arc::new(**b);
                let old = std::mem::replace(slot, PageSlot::Shared(arc));
                if let PageSlot::Owned(b) = old {
                    self.spare.push(b);
                }
            }
        }
        let hashes: Arc<[u64]> = match base_hashes {
            Some(h) if h.len() == self.slots.len() => self
                .slots
                .iter()
                .enumerate()
                .map(|(page, slot)| {
                    if self.dirty[page >> 6] & (1 << (page & 63)) != 0 {
                        hash_page(slot.bytes())
                    } else {
                        h[page]
                    }
                })
                .collect(),
            _ => self.slots.iter().map(|s| hash_page(s.bytes())).collect(),
        };
        let pages: Vec<Arc<PageBuf>> = self
            .slots
            .iter()
            .map(|s| match s {
                PageSlot::Shared(a) => Arc::clone(a),
                PageSlot::Owned(_) => unreachable!("owned pages were just materialized"),
            })
            .collect();
        self.dirty.fill(0);
        (pages, hashes, fresh)
    }

    /// Host-side read: copies `out.len()` bytes starting at `start`,
    /// crossing page boundaries as needed. The caller has bounds-checked
    /// the range against [`Self::len`].
    pub(crate) fn copy_out(&self, start: usize, out: &mut [u8]) {
        let mut pos = start;
        let mut out = out;
        while !out.is_empty() {
            let page = pos / PAGE_SIZE;
            let off = pos % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(out.len());
            out[..n].copy_from_slice(&self.page(page)[off..off + n]);
            out = &mut out[n..];
            pos += n;
        }
    }

    /// Host-side write: copies `bytes` into the image starting at `start`,
    /// marking pages dirty and copying shared pages out of sharing. The
    /// caller has bounds-checked the range against [`Self::len`].
    pub(crate) fn copy_in(&mut self, start: usize, bytes: &[u8]) {
        let mut pos = start;
        let mut bytes = bytes;
        while !bytes.is_empty() {
            let page = pos / PAGE_SIZE;
            let off = pos % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(bytes.len());
            self.page_for_write(page)[off..off + n].copy_from_slice(&bytes[..n]);
            bytes = &bytes[n..];
            pos += n;
        }
    }

    /// XORs one bit of the byte at `pos`, going through the copy-on-write
    /// path so the flip lands in an owned page and is tracked as dirty
    /// (a memory-cell fault model hook). The caller has bounds-checked
    /// `pos` against [`Self::len`].
    pub(crate) fn flip_bit(&mut self, pos: usize, bit: u8) {
        let page = pos / PAGE_SIZE;
        let off = pos % PAGE_SIZE;
        self.page_for_write(page)[off] ^= 1 << (bit % 8);
    }

    /// Whether the image equals a snapshot's page table byte-for-byte,
    /// with the pointer-equality fast path (`Arc::ptr_eq` pages are
    /// identical by construction).
    pub(crate) fn eq_pages(&self, pages: &[Arc<PageBuf>]) -> bool {
        if pages.len() != self.slots.len() {
            return false;
        }
        self.slots.iter().zip(pages).all(|(slot, arc)| match slot {
            PageSlot::Shared(a) => Arc::ptr_eq(a, arc) || **a == **arc,
            PageSlot::Owned(b) => **b == **arc,
        })
    }
}

/// Hashes one page of guest memory (any non-cryptographic mixer works:
/// [`Machine::state_eq`](crate::Machine::state_eq) only ever uses hash
/// *inequality* as evidence, so collisions cost a fallback comparison,
/// never correctness).
pub(crate) fn hash_page(bytes: &[u8]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ v).wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 29;
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Pre-access check shared by loads and stores: alignment first (so a
/// misaligned in-bounds access reports [`CrashKind::Misaligned`]), then
/// the guard region below [`DATA_BASE`] and the upper bound.
#[inline(always)]
fn check_access(mem_len: usize, addr: u32, size: u32) -> Result<(), CrashKind> {
    if !addr.is_multiple_of(size) {
        return Err(CrashKind::Misaligned { addr, size });
    }
    let end = addr as usize + size as usize;
    if addr < DATA_BASE || end > mem_len {
        return Err(CrashKind::MemOutOfBounds { addr, size });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Guest memory primitives.
//
// Free functions over `&PagedMem`/`&mut PagedMem` shared by the micro-op
// dispatch loop, the superblock trace executor, and (through thin
// `Machine` method wrappers) the reference interpreter, so all pipelines
// share one implementation of the memory model. After the alignment
// check, `off & !(size - 1)` is a semantic no-op that lets the compiler
// prove `off + size <= PAGE_SIZE` and elide the page-slice bounds check.
// ---------------------------------------------------------------------

#[inline(always)]
pub(crate) fn load_mem(
    mem: &PagedMem,
    addr: u32,
    width: MemWidth,
    signed: bool,
) -> Result<u32, CrashKind> {
    let size = width.bytes();
    check_access(mem.len, addr, size)?;
    let p = mem.page(addr as usize / PAGE_SIZE);
    let off = addr as usize % PAGE_SIZE;
    Ok(match (width, signed) {
        (MemWidth::Byte, false) => u32::from(p[off]),
        (MemWidth::Byte, true) => p[off] as i8 as i32 as u32,
        (MemWidth::Half, false) => {
            let o = off & !1;
            u32::from(u16::from_le_bytes([p[o], p[o | 1]]))
        }
        (MemWidth::Half, true) => {
            let o = off & !1;
            i16::from_le_bytes([p[o], p[o | 1]]) as i32 as u32
        }
        (MemWidth::Word, _) => {
            let o = off & !3;
            u32::from_le_bytes(p[o..o + 4].try_into().expect("4-byte slice"))
        }
    })
}

#[inline(always)]
pub(crate) fn store_mem(
    mem: &mut PagedMem,
    addr: u32,
    width: MemWidth,
    value: u32,
) -> Result<(), CrashKind> {
    let size = width.bytes();
    check_access(mem.len, addr, size)?;
    let off = addr as usize % PAGE_SIZE;
    let p = mem.page_for_write(addr as usize / PAGE_SIZE);
    match width {
        MemWidth::Byte => p[off] = value as u8,
        MemWidth::Half => {
            let o = off & !1;
            p[o..o + 2].copy_from_slice(&(value as u16).to_le_bytes());
        }
        MemWidth::Word => {
            let o = off & !3;
            p[o..o + 4].copy_from_slice(&value.to_le_bytes());
        }
    }
    Ok(())
}

#[inline(always)]
pub(crate) fn load_f64_mem(mem: &PagedMem, addr: u32) -> Result<f64, CrashKind> {
    if !addr.is_multiple_of(8) {
        return Err(CrashKind::Misaligned { addr, size: 8 });
    }
    if addr < DATA_BASE || addr as usize + 8 > mem.len {
        return Err(CrashKind::MemOutOfBounds { addr, size: 8 });
    }
    let p = mem.page(addr as usize / PAGE_SIZE);
    let o = (addr as usize % PAGE_SIZE) & !7;
    Ok(f64::from_le_bytes(
        p[o..o + 8].try_into().expect("8-byte slice"),
    ))
}

#[inline(always)]
pub(crate) fn store_f64_mem(mem: &mut PagedMem, addr: u32, value: f64) -> Result<(), CrashKind> {
    if !addr.is_multiple_of(8) {
        return Err(CrashKind::Misaligned { addr, size: 8 });
    }
    if addr < DATA_BASE || addr as usize + 8 > mem.len {
        return Err(CrashKind::MemOutOfBounds { addr, size: 8 });
    }
    let o = (addr as usize % PAGE_SIZE) & !7;
    let p = mem.page_for_write(addr as usize / PAGE_SIZE);
    p[o..o + 8].copy_from_slice(&value.to_le_bytes());
    Ok(())
}

//! Tier 4 support: the execution context and exit protocol for
//! ahead-of-time compiled native regions.
//!
//! The `certa-aot` crate walks a program's CFG and emits Rust source — one
//! `match` arm per basic block, guest registers lowered to locals — which a
//! consumer (the bench crate's `build.rs`) compiles into its own binary as
//! [`AotProgram`] values. [`crate::Machine::run_aot`] drives such a program:
//! it enters native code at block boundaries and falls back to the
//! interpreter tiers everywhere native code cannot go (mid-block resume
//! pcs, sub-block pause tails, indirect jumps to uncompiled targets).
//!
//! The contract between generated code and the machine is deliberately
//! narrow and lives entirely in [`AotCtx`]:
//!
//! * generated code reads the entry state ([`AotCtx::pc`],
//!   [`AotCtx::icount`], [`AotCtx::vp`], [`AotCtx::stop`], the register
//!   files), executes whole basic blocks, and reaches guest memory only
//!   through the checked accessors ([`AotCtx::lw`], [`AotCtx::sw`], …)
//!   which share one implementation of the memory model with every
//!   interpreter tier;
//! * before *every* return it spills exact architectural state back
//!   ([`AotCtx::set_state`], [`AotCtx::put_regs`], [`AotCtx::put_fregs`])
//!   — exact pc, exact icount (including a crashing instruction, excluding
//!   a failed fetch), exact value-producing count (excluding the crashing
//!   instruction's writeback) — so the machine observes precisely the
//!   state the reference interpreter would have left;
//! * the [`AotExit`] discriminant tells the machine why native execution
//!   stopped and therefore which tier handles the next instruction.
//!
//! Native regions run only hook-free (see
//! [`crate::WritebackHook::IS_NOOP`]): a fault-injection or recording hook
//! must observe every individual writeback, which is exactly the
//! per-instruction observability native code compiles away. Campaigns
//! therefore run golden runs and checkpoint capture natively and keep
//! every fault trial on the interpreter tiers.

use crate::machine::CrashKind;
use crate::mem::{load_f64_mem, load_mem, store_f64_mem, store_mem, PagedMem};
use certa_isa::MemWidth;

/// Why a native region returned control to the interpreter loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AotExit {
    /// The current pc has no compiled region entry (mid-block resume pc,
    /// indirect jump to an uncompiled target, or control fell off the end
    /// of the code array). The machine retires one instruction on the
    /// interpreter and retries native entry.
    Escape,
    /// Executing the next full block would cross the pause or watchdog
    /// boundary (`icount + block_len > stop`). The machine hands the
    /// sub-block tail to the interpreter, which stops exactly at the
    /// boundary.
    Bounded,
    /// The program executed `halt`; pc is on the halt instruction and
    /// icount includes it.
    Halted,
    /// A memory access crashed; pc is on the faulting instruction, icount
    /// includes it, and the value-producing count excludes its writeback.
    Crashed(CrashKind),
}

/// Mutable view of a [`crate::Machine`]'s architectural state handed to
/// generated native code for the duration of one region-execution call.
///
/// Constructed only by the machine (the fields are disjoint borrows of its
/// register files, paged memory, and profile counters); generated code
/// sees the public accessors below and nothing else.
#[derive(Debug)]
pub struct AotCtx<'m> {
    regs: &'m mut [u32; 32],
    fregs: &'m mut [f64; 32],
    mem: &'m mut PagedMem,
    exec_counts: &'m mut [u64],
    pc: u64,
    icount: u64,
    vp: u64,
    stop: u64,
}

impl<'m> AotCtx<'m> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        regs: &'m mut [u32; 32],
        fregs: &'m mut [f64; 32],
        mem: &'m mut PagedMem,
        exec_counts: &'m mut [u64],
        pc: u64,
        icount: u64,
        vp: u64,
        stop: u64,
    ) -> Self {
        AotCtx {
            regs,
            fregs,
            mem,
            exec_counts,
            pc,
            icount,
            vp,
            stop,
        }
    }

    /// `(pc, icount, value_producing)` as last spilled (or as entered, if
    /// the region returned before touching anything).
    pub(crate) fn state(&self) -> (u64, u64, u64) {
        (self.pc, self.icount, self.vp)
    }

    /// Program counter at region entry.
    #[inline(always)]
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Dynamic instruction count at region entry.
    #[inline(always)]
    #[must_use]
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Value-producing writeback count at region entry.
    #[inline(always)]
    #[must_use]
    pub fn vp(&self) -> u64 {
        self.vp
    }

    /// The nearest instruction-count boundary (pause target or watchdog
    /// budget): a block may only execute natively when retiring all of it
    /// stays at or below this bound.
    #[inline(always)]
    #[must_use]
    pub fn stop(&self) -> u64 {
        self.stop
    }

    /// Integer register value at region entry (index taken modulo 32).
    #[inline(always)]
    #[must_use]
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i & 31]
    }

    /// Floating-point register value at region entry (index modulo 32).
    #[inline(always)]
    #[must_use]
    pub fn freg(&self, i: usize) -> f64 {
        self.fregs[i & 31]
    }

    /// Spills the control counters before a return.
    #[inline(always)]
    pub fn set_state(&mut self, pc: u64, icount: u64, vp: u64) {
        self.pc = pc;
        self.icount = icount;
        self.vp = vp;
    }

    /// Spills the integer register file before a return (element 0 is
    /// ignored — `$zero` stays zero).
    #[inline(always)]
    pub fn put_regs(&mut self, regs: [u32; 32]) {
        *self.regs = regs;
        self.regs[0] = 0;
    }

    /// Spills the floating-point register file before a return.
    #[inline(always)]
    pub fn put_fregs(&mut self, fregs: [f64; 32]) {
        *self.fregs = fregs;
    }

    /// Bumps per-instruction execution counts for instructions
    /// `start..end`, one retirement each (profiled regions only; the
    /// unprofiled monomorphization never calls this, so the machine hands
    /// an empty slice without cost).
    #[inline(always)]
    pub fn bump_counts(&mut self, start: usize, end: usize) {
        for c in &mut self.exec_counts[start..end] {
            *c += 1;
        }
    }

    /// Unsigned byte load.
    ///
    /// # Errors
    ///
    /// Returns the [`CrashKind`] the reference interpreter would crash
    /// with (all the accessors below do likewise).
    #[inline(always)]
    pub fn lbu(&self, addr: u32) -> Result<u32, CrashKind> {
        load_mem(self.mem, addr, MemWidth::Byte, false)
    }

    /// Sign-extending byte load.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn lb(&self, addr: u32) -> Result<u32, CrashKind> {
        load_mem(self.mem, addr, MemWidth::Byte, true)
    }

    /// Unsigned halfword load.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn lhu(&self, addr: u32) -> Result<u32, CrashKind> {
        load_mem(self.mem, addr, MemWidth::Half, false)
    }

    /// Sign-extending halfword load.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn lh(&self, addr: u32) -> Result<u32, CrashKind> {
        load_mem(self.mem, addr, MemWidth::Half, true)
    }

    /// Word load.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn lw(&self, addr: u32) -> Result<u32, CrashKind> {
        load_mem(self.mem, addr, MemWidth::Word, false)
    }

    /// Byte store.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn sb(&mut self, addr: u32, value: u32) -> Result<(), CrashKind> {
        store_mem(self.mem, addr, MemWidth::Byte, value)
    }

    /// Halfword store.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn sh(&mut self, addr: u32, value: u32) -> Result<(), CrashKind> {
        store_mem(self.mem, addr, MemWidth::Half, value)
    }

    /// Word store.
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn sw(&mut self, addr: u32, value: u32) -> Result<(), CrashKind> {
        store_mem(self.mem, addr, MemWidth::Word, value)
    }

    /// 64-bit float load (8-byte aligned).
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn lfd(&self, addr: u32) -> Result<f64, CrashKind> {
        load_f64_mem(self.mem, addr)
    }

    /// 64-bit float store (8-byte aligned).
    ///
    /// # Errors
    ///
    /// See [`AotCtx::lbu`].
    #[inline(always)]
    pub fn sfd(&mut self, addr: u32, value: f64) -> Result<(), CrashKind> {
        store_f64_mem(self.mem, addr, value)
    }
}

/// One ahead-of-time compiled program: the pair of monomorphized region
/// executors (`run` without profiling, `run_profiled` bumping
/// `exec_counts`) plus enough identity for the machine to sanity-check
/// that the native code matches the instruction stream it is about to
/// execute.
#[derive(Debug, Clone, Copy)]
pub struct AotProgram {
    /// Program name the code was generated from (diagnostics).
    pub name: &'static str,
    /// Length of the instruction stream the code was generated from;
    /// [`crate::Machine::run_aot`] asserts this against its program.
    pub code_len: usize,
    /// Executes native regions starting at the context's pc until an
    /// [`AotExit`], without per-instruction profiling.
    pub run: fn(&mut AotCtx<'_>) -> AotExit,
    /// As `run`, but bumps per-instruction execution counts.
    pub run_profiled: fn(&mut AotCtx<'_>) -> AotExit,
}

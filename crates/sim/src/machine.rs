//! The functional simulator.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use certa_asm::DATA_BASE;
use certa_isa::{reg, AluOp, FpuOp, FReg, Instr, MemWidth, Program, Reg};

use crate::aot::{AotCtx, AotExit, AotProgram};
use crate::decode::{DecodedProgram, MOp, MicroOp, SuperOp};
use crate::mem::{
    hash_page, load_f64_mem, load_mem, store_f64_mem, store_mem, PageBuf, PagedMem,
};

/// Monotonic id source for [`Snapshot`]s; id 0 is reserved for "no base
/// snapshot" so a fresh machine never takes the dirty-page restore path.
static SNAPSHOT_IDS: AtomicU64 = AtomicU64::new(1);

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Total data memory size in bytes. The data segment is loaded at
    /// [`DATA_BASE`]; the stack pointer starts at `mem_size - 16` and grows
    /// down.
    pub mem_size: u32,
    /// Watchdog: a run executing more than this many instructions is
    /// classified as [`Outcome::InfiniteRun`] (the paper's "infinite
    /// execution" failures).
    pub max_instructions: u64,
    /// Whether to record per-instruction execution counts (needed for the
    /// paper's Table 3 dynamic statistics; small overhead).
    pub profile: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_size: 4 << 20,
            max_instructions: 500_000_000,
            profile: false,
        }
    }
}

/// Why a run crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// A load or store touched memory outside `[DATA_BASE, mem_size)`.
    /// Accesses below `DATA_BASE` (the guard region) are the typical result
    /// of corrupted pointer arithmetic.
    MemOutOfBounds {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A load or store address was not a multiple of the access size.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// The program counter left the code array (wild `jr`, corrupted return
    /// address, or falling off the end of the program).
    PcOutOfRange {
        /// The invalid instruction index.
        pc: u64,
    },
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::MemOutOfBounds { addr, size } => {
                write!(f, "out-of-bounds {size}-byte access at {addr:#x}")
            }
            CrashKind::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            CrashKind::PcOutOfRange { pc } => write!(f, "program counter out of range: {pc}"),
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The program executed `halt`.
    Halted,
    /// The program crashed (a catastrophic failure in the paper's terms).
    Crashed(CrashKind),
    /// The watchdog expired (the paper's "infinite execution" failures).
    InfiniteRun,
}

impl Outcome {
    /// Whether this outcome is one of the paper's catastrophic failures
    /// (crash or infinite run).
    #[must_use]
    pub fn is_catastrophic(&self) -> bool {
        !matches!(self, Outcome::Halted)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Halted => write!(f, "halted"),
            Outcome::Crashed(k) => write!(f, "crashed: {k}"),
            Outcome::InfiniteRun => write!(f, "infinite run (watchdog)"),
        }
    }
}

/// Result of a completed [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic executions of value-producing instructions (the denominator
    /// of the fault model's uniform sampling).
    pub value_producing: u64,
}

/// Result of a bounded [`Machine::run_until`] step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedRun {
    /// The program finished (halted, crashed, or tripped the watchdog)
    /// before reaching the instruction target.
    Finished(RunResult),
    /// The dynamic instruction count reached the target; the machine is
    /// paused at an instruction boundary and can be resumed with another
    /// [`Machine::run_until`] or [`Machine::run`] call.
    Paused,
}

/// Error from the fallible [`Machine`] constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// The program's data segment (plus the 4 KiB slack the loader
    /// reserves above it) does not fit below `mem_size`.
    DataSegmentTooLarge {
        /// Bytes required: `DATA_BASE + data segment + 4096` slack.
        required: usize,
        /// Configured memory size.
        mem_size: u32,
    },
    /// A snapshot's memory image size does not match the machine's
    /// configured memory size.
    MemSizeMismatch {
        /// Memory bytes recorded in the snapshot.
        snapshot: usize,
        /// Memory bytes configured for the machine.
        machine: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::DataSegmentTooLarge { required, mem_size } => write!(
                f,
                "data segment needs {required} bytes but only {mem_size} are configured"
            ),
            MachineError::MemSizeMismatch { snapshot, machine } => write!(
                f,
                "snapshot holds {snapshot} bytes of memory but the machine has {machine}"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// A complete copy of the architectural state of a [`Machine`] at an
/// instruction boundary: register files, program counter, dynamic counters,
/// and the full memory image as a table of shared 4 KiB pages.
///
/// Snapshots make fault campaigns cheap: the golden run records them at
/// intervals, and every trial then [`Machine::restore`]s the latest snapshot
/// before its first injection point instead of re-executing the prefix.
/// The page table is copy-on-write-shared with the machine it was captured
/// from (and with every machine later restored from it): capture
/// materializes only the pages written since the previous capture, and
/// restore swaps page pointers instead of copying bytes (see
/// [`Machine::restore`] and the `mem` module docs).
///
/// Per-instruction profiling counts ([`Machine::exec_counts`]) are *not*
/// part of a snapshot: they are a measurement artifact of one specific run,
/// not architectural state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Identity for dirty-page restore: machines remember the id of the
    /// snapshot their memory was last synchronized with. Clones share the
    /// id, which is sound because snapshots are immutable.
    id: u64,
    regs: [u32; 32],
    fregs: [f64; 32],
    pc: u64,
    icount: u64,
    value_producing: u64,
    /// The memory image: one immutable shared page per [`PAGE_SIZE`]
    /// bytes. Cloning a snapshot (or restoring from it) bumps reference
    /// counts; nobody can write through these `Arc`s — a machine holding
    /// one copies the page out before its first write.
    pages: Vec<Arc<PageBuf>>,
    /// Addressable bytes (the tail of the last page past this is zero
    /// padding).
    mem_len: usize,
    /// One 64-bit hash per page, computed incrementally at capture (clean
    /// pages reuse the previous capture's hash) and shared by clones.
    /// [`Machine::state_eq`] uses these to refute equality in
    /// O(pages-compared) without touching page bytes: differing hashes
    /// prove differing content (equal hashes prove nothing and fall back
    /// to an exact compare).
    page_hashes: Arc<[u64]>,
}

impl Snapshot {
    /// Dynamic instruction count at which this snapshot was taken.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    /// Snapshot identity (used by campaigns to key precomputed page diffs;
    /// see [`Machine::restore_with_diff`]).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of [`PAGE_SIZE`] pages in the memory image.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Logical footprint in bytes for checkpoint budget accounting: the
    /// (fully materialized) memory image, the per-page hash table, plus
    /// the inline state — both register files (integer and
    /// floating-point), program counter, dynamic counters, and the
    /// id/Vec bookkeeping — which `size_of::<Snapshot>()` covers because
    /// the register files are stored inline, not boxed.
    ///
    /// Deliberately *logical*, not physical: copy-on-write sharing means
    /// the real incremental cost of a capture is far smaller (see
    /// [`Machine::capture_bytes`]), but budget-derived checkpoint counts
    /// must not depend on how much happened to be shared at capture time,
    /// or campaign results would stop being a pure function of the
    /// configuration.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.mem_len
            + self.page_hashes.len() * std::mem::size_of::<u64>()
            + std::mem::size_of::<Snapshot>()
    }

    /// Page indices on which `self` and `other` differ, byte-exactly
    /// (page hashes are deliberately not consulted: a hash collision must
    /// never hide a real difference, because campaigns feed this list to
    /// [`Machine::restore_with_diff`] where missing a page would corrupt
    /// the restore). Pages sharing one `Arc` are identical by
    /// construction and skipped without touching their bytes — adjacent
    /// golden checkpoints share almost everything, which is what makes
    /// campaign diff precomputation cheap. Returns `None` when the images
    /// differ in size.
    #[must_use]
    pub fn diff_pages(&self, other: &Snapshot) -> Option<Vec<u32>> {
        if self.mem_len != other.mem_len || self.pages.len() != other.pages.len() {
            return None;
        }
        let mut pages = Vec::new();
        for (page, (a, b)) in self.pages.iter().zip(&other.pages).enumerate() {
            if !Arc::ptr_eq(a, b) && **a != **b {
                pages.push(page as u32);
            }
        }
        Some(pages)
    }
}

/// Error returned by the host-side memory access helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// Faulting address.
    pub addr: u32,
    /// Requested length.
    pub len: u32,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host access of {} bytes at {:#x} is out of bounds",
            self.len, self.addr
        )
    }
}

impl std::error::Error for MemError {}

/// Hook invoked on every value-producing writeback; the fault injector
/// overrides these to flip bits in instruction results.
///
/// The default implementations pass values through unchanged.
pub trait WritebackHook {
    /// Whether this hook observably does nothing: both writeback methods
    /// are the identity and carry no state. Only such hooks may execute
    /// inside AOT native regions ([`Machine::run_aot`]), where individual
    /// writebacks are compiled away; every other hook keeps the
    /// interpreter tiers, which call it on every value-producing
    /// writeback. `false` is the safe default — an implementation may opt
    /// in only when both methods are left at their defaults.
    const IS_NOOP: bool = false;

    /// Observes/modifies an integer register writeback.
    #[inline]
    fn int_writeback(&mut self, instr_index: usize, value: u32) -> u32 {
        let _ = instr_index;
        value
    }

    /// Observes/modifies a floating-point register writeback.
    #[inline]
    fn float_writeback(&mut self, instr_index: usize, value: f64) -> f64 {
        let _ = instr_index;
        value
    }
}

/// A hook that does nothing (fault-free execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl WritebackHook for NoHook {
    const IS_NOOP: bool = true;
}

/// The simulator state: registers, memory, program counter.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    decoded: Arc<DecodedProgram>,
    regs: [u32; 32],
    fregs: [f64; 32],
    /// Paged copy-on-write memory image, including the per-page dirty
    /// bitset (see the `mem` module docs).
    mem: PagedMem,
    pc: u64,
    icount: u64,
    value_producing: u64,
    exec_counts: Vec<u64>,
    profile: bool,
    max_instructions: u64,
    /// Id of the [`Snapshot`] this machine's memory was last synchronized
    /// with (0 = none): non-dirty pages are bit-identical to that snapshot,
    /// which is what makes dirty-page restore exact.
    base_snapshot: u64,
    /// Per-page hashes of the base snapshot's memory (shared with it),
    /// `None` when there is no base. Clean pages of this machine hash to
    /// these values by the dirty-tracking invariant, which is what lets
    /// [`Machine::state_eq`] refute cross-snapshot equality in
    /// O(pages-compared) instead of O(memory).
    base_hashes: Option<Arc<[u64]>>,
    /// Instructions retired inside superblock traces (diagnostics: lets
    /// benches and tests verify the superblock tier actually executed).
    sb_retired: u64,
    /// Instructions retired inside AOT native regions (diagnostics: tier-4
    /// coverage of this machine's execution).
    aot_retired: u64,
    /// Cumulative bytes materialized by [`Machine::snapshot`] captures
    /// (owned pages copied into fresh shared pages) — the true
    /// incremental cost of checkpointing under copy-on-write sharing.
    capture_bytes: u64,
}

/// Control-flow effect of one executed micro-op.
enum Step {
    /// Fall through to the next instruction.
    Next,
    /// Transfer to an absolute instruction index.
    Jump(u64),
    /// The program executed `halt`.
    Halt,
    /// The instruction crashed the run.
    Crash(CrashKind),
}

impl<'p> Machine<'p> {
    /// Creates a machine with the program's data segment loaded at
    /// [`DATA_BASE`], `$sp` at the top of memory and `$gp` at `DATA_BASE`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::DataSegmentTooLarge`] if the data segment
    /// (plus 4 KiB of loader slack) does not fit in `config.mem_size`.
    pub fn try_new(program: &'p Program, config: &MachineConfig) -> Result<Self, MachineError> {
        let decoded = Arc::new(DecodedProgram::new(program));
        Self::try_new_with_decoded(program, &decoded, config)
    }

    /// Like [`Machine::try_new`], but reuses an already-lowered
    /// [`DecodedProgram`] instead of decoding again. Fault campaigns decode
    /// once and share the result across the golden run and every trial
    /// machine.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::DataSegmentTooLarge`] as [`Machine::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `decoded` was not produced from `program` (length
    /// mismatch) — a caller contract violation, not a runtime condition.
    pub fn try_new_with_decoded(
        program: &'p Program,
        decoded: &Arc<DecodedProgram>,
        config: &MachineConfig,
    ) -> Result<Self, MachineError> {
        assert_eq!(
            decoded.len(),
            program.code.len(),
            "decoded program does not match the instruction stream"
        );
        let lo = DATA_BASE as usize;
        let hi = lo + program.data.len();
        if hi + 4096 >= config.mem_size as usize {
            return Err(MachineError::DataSegmentTooLarge {
                required: hi + 4096,
                mem_size: config.mem_size,
            });
        }
        let mut mem = PagedMem::new_zeroed(config.mem_size as usize);
        mem.copy_in(lo, &program.data);
        // The freshly loaded image has no base snapshot, so the dirty bits
        // the loader just set carry no meaning; clear them so diagnostics
        // (and the first capture's hash reuse guard) see a clean machine.
        mem.clear_dirty();
        let mut regs = [0u32; 32];
        regs[reg::SP.index()] = config.mem_size - 16;
        regs[reg::GP.index()] = DATA_BASE;
        Ok(Machine {
            program,
            decoded: Arc::clone(decoded),
            regs,
            fregs: [0.0; 32],
            mem,
            pc: program.entry as u64,
            icount: 0,
            value_producing: 0,
            exec_counts: if config.profile {
                vec![0; program.code.len()]
            } else {
                Vec::new()
            },
            profile: config.profile,
            max_instructions: config.max_instructions,
            base_snapshot: 0,
            base_hashes: None,
            sb_retired: 0,
            aot_retired: 0,
            capture_bytes: 0,
        })
    }

    /// Creates a machine, panicking on configuration errors (convenience
    /// wrapper around [`Machine::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics if the data segment does not fit in `config.mem_size`.
    #[must_use]
    pub fn new(program: &'p Program, config: &MachineConfig) -> Self {
        Self::try_new(program, config)
            .unwrap_or_else(|e| panic!("machine configuration rejected: {e}"))
    }

    /// Creates a machine whose architectural state is copied from
    /// `snapshot`, with watchdog and profiling taken from `config`.
    ///
    /// The `config.mem_size` must match the snapshot's memory image — a
    /// snapshot is a complete state, not a loadable program image.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] if `config.mem_size`
    /// differs from the snapshot's memory size.
    pub fn from_snapshot(
        program: &'p Program,
        snapshot: &Snapshot,
        config: &MachineConfig,
    ) -> Result<Self, MachineError> {
        let decoded = Arc::new(DecodedProgram::new(program));
        Self::from_snapshot_with_decoded(program, &decoded, snapshot, config)
    }

    /// Like [`Machine::from_snapshot`], but reuses an already-lowered
    /// [`DecodedProgram`] (see [`Machine::try_new_with_decoded`]).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] as
    /// [`Machine::from_snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `decoded` was not produced from `program`.
    pub fn from_snapshot_with_decoded(
        program: &'p Program,
        decoded: &Arc<DecodedProgram>,
        snapshot: &Snapshot,
        config: &MachineConfig,
    ) -> Result<Self, MachineError> {
        assert_eq!(
            decoded.len(),
            program.code.len(),
            "decoded program does not match the instruction stream"
        );
        if snapshot.mem_len != config.mem_size as usize {
            return Err(MachineError::MemSizeMismatch {
                snapshot: snapshot.mem_len,
                machine: config.mem_size as usize,
            });
        }
        Ok(Machine {
            program,
            decoded: Arc::clone(decoded),
            regs: snapshot.regs,
            fregs: snapshot.fregs,
            // O(pages) reference bumps: the machine shares every page with
            // the snapshot and copies one out only when it first writes it.
            mem: PagedMem::from_shared(&snapshot.pages, snapshot.mem_len),
            pc: snapshot.pc,
            icount: snapshot.icount,
            value_producing: snapshot.value_producing,
            exec_counts: if config.profile {
                vec![0; program.code.len()]
            } else {
                Vec::new()
            },
            profile: config.profile,
            max_instructions: config.max_instructions,
            base_snapshot: snapshot.id,
            base_hashes: Some(Arc::clone(&snapshot.page_hashes)),
            sb_retired: 0,
            aot_retired: 0,
            capture_bytes: 0,
        })
    }

    /// The shared micro-op lowering this machine dispatches over.
    #[must_use]
    pub fn decoded_program(&self) -> &Arc<DecodedProgram> {
        &self.decoded
    }

    /// Captures the complete architectural state at the current instruction
    /// boundary. See [`Snapshot`] for what is (and is not) included.
    ///
    /// Capture is incremental under copy-on-write sharing: only the pages
    /// written since the previous capture/restore point are materialized
    /// (copied into fresh shared pages and rehashed); everything else is a
    /// reference bump reusing the previous hashes. The machine's memory is
    /// left sharing every page with the new snapshot, which becomes its
    /// base — so an immediately following [`Machine::restore`] of it is
    /// free, and [`Machine::state_eq`] against it is O(pages) pointer
    /// compares. This is why capture takes `&mut self`: it flips written
    /// pages from owned to shared (the architectural state is unchanged).
    #[must_use]
    pub fn snapshot(&mut self) -> Snapshot {
        let (pages, page_hashes, fresh) = self.mem.capture(self.base_hashes.as_ref());
        self.capture_bytes += fresh;
        let id = SNAPSHOT_IDS.fetch_add(1, Ordering::Relaxed);
        self.base_snapshot = id;
        self.base_hashes = Some(Arc::clone(&page_hashes));
        Snapshot {
            id,
            regs: self.regs,
            fregs: self.fregs,
            pc: self.pc,
            icount: self.icount,
            value_producing: self.value_producing,
            pages,
            mem_len: self.mem.len(),
            page_hashes,
        }
    }

    /// Cumulative bytes materialized by this machine's
    /// [`Machine::snapshot`] captures — the true incremental cost of
    /// checkpointing under copy-on-write sharing (untouched pages cost a
    /// reference bump, not a copy). Campaigns report this as checkpoint
    /// capture bytes.
    #[must_use]
    pub fn capture_bytes(&self) -> u64 {
        self.capture_bytes
    }

    /// Overwrites this machine's architectural state with `snapshot`.
    ///
    /// This is the hot path of checkpointed fault campaigns. When the
    /// machine's memory was last synchronized with this same snapshot (a
    /// previous [`Machine::restore`], [`Machine::snapshot`] capture, or
    /// [`Machine::from_snapshot`] of it), the rollback is O(dirty pages)
    /// of pointer swaps: every page written since is swapped back to
    /// sharing the snapshot's page, and every clean page is untouched —
    /// no page bytes are copied at all (displaced owned pages are
    /// recycled, so the steady-state trial loop never allocates).
    /// Restoring a *different* snapshot falls back to swapping every slot
    /// (see [`Machine::restore_full`] — still pointer swaps, not copies).
    /// Both paths produce bit-identical state.
    ///
    /// Watchdog budget and profiling configuration are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] if the snapshot's memory
    /// image differs in size from this machine's memory.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), MachineError> {
        if snapshot.mem_len != self.mem.len() {
            return Err(MachineError::MemSizeMismatch {
                snapshot: snapshot.mem_len,
                machine: self.mem.len(),
            });
        }
        if self.base_snapshot == snapshot.id {
            self.restore_registers(snapshot);
            self.mem.restore_dirty_from(&snapshot.pages);
        } else {
            self.restore_full_unchecked(snapshot);
        }
        Ok(())
    }

    /// Overwrites this machine's architectural state with `snapshot` by
    /// swapping **every** page to share the snapshot's, bypassing
    /// dirty-page tracking. Exposed so the differential suite can prove
    /// both restore paths bit-identical; ordinary callers should use
    /// [`Machine::restore`].
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] if the snapshot's memory
    /// image differs in size from this machine's memory.
    pub fn restore_full(&mut self, snapshot: &Snapshot) -> Result<(), MachineError> {
        if snapshot.mem_len != self.mem.len() {
            return Err(MachineError::MemSizeMismatch {
                snapshot: snapshot.mem_len,
                machine: self.mem.len(),
            });
        }
        self.restore_full_unchecked(snapshot);
        Ok(())
    }

    fn restore_full_unchecked(&mut self, snapshot: &Snapshot) {
        self.restore_registers(snapshot);
        self.mem.restore_all_from(&snapshot.pages);
        self.base_snapshot = snapshot.id;
        self.base_hashes = Some(Arc::clone(&snapshot.page_hashes));
    }

    fn restore_registers(&mut self, snapshot: &Snapshot) {
        self.regs = snapshot.regs;
        self.fregs = snapshot.fregs;
        self.pc = snapshot.pc;
        self.icount = snapshot.icount;
        self.value_producing = snapshot.value_producing;
    }

    /// Number of pages dirtied since the last restore point (diagnostics
    /// and benches).
    #[must_use]
    pub fn dirty_pages(&self) -> usize {
        self.mem.dirty_page_count()
    }

    /// Id of the snapshot this machine's memory was last synchronized
    /// with, or 0 when it has none (a freshly loaded machine). Campaigns
    /// use this to pick a precomputed page diff for
    /// [`Machine::restore_with_diff`].
    #[must_use]
    pub fn base_snapshot_id(&self) -> u64 {
        self.base_snapshot
    }

    /// Restores `snapshot` using a precomputed page diff against the
    /// machine's current base snapshot: instead of the every-slot swap a
    /// cross-snapshot [`Machine::restore`] would make, only the pages
    /// dirtied since the last restore point **plus** `changed_pages` are
    /// swapped to share the snapshot's pages (pointer swaps — no byte
    /// copies on any path). The fault campaign precomputes diffs between
    /// adjacent golden checkpoints so checkpoint-hopping restores are
    /// page-granular too.
    ///
    /// **Contract:** `changed_pages` must include every page on which the
    /// machine's current base snapshot (see
    /// [`Machine::base_snapshot_id`]) and `snapshot` differ — e.g. the
    /// union of adjacent [`Snapshot::diff_pages`] lists along the hop.
    /// Every other page is clean (bit-identical to the base, hence to
    /// `snapshot`) or dirty (copied here). Out-of-range page indices are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] if the snapshot's memory
    /// image differs in size from this machine's memory.
    pub fn restore_with_diff(
        &mut self,
        snapshot: &Snapshot,
        changed_pages: &[u32],
    ) -> Result<(), MachineError> {
        if snapshot.mem_len != self.mem.len() {
            return Err(MachineError::MemSizeMismatch {
                snapshot: snapshot.mem_len,
                machine: self.mem.len(),
            });
        }
        self.restore_registers(snapshot);
        self.mem.restore_diff_from(&snapshot.pages, changed_pages);
        self.base_snapshot = snapshot.id;
        self.base_hashes = Some(Arc::clone(&snapshot.page_hashes));
        Ok(())
    }

    /// Whether this machine's architectural state is bit-identical to
    /// `snapshot` (floats compared by bit pattern, so NaNs compare
    /// faithfully). Cheap fields are compared first so divergent states
    /// usually return `false` without touching the memory image, and the
    /// memory comparison exploits dirty-page tracking:
    ///
    /// * against the machine's own base snapshot, only dirty pages are
    ///   compared (exact, O(dirty pages));
    /// * against any other snapshot, per-page hashes refute inequality
    ///   first — clean pages by comparing the base's and the snapshot's
    ///   stored hashes, dirty pages by hashing current content — and only
    ///   when no hash disagrees (the rare "probably reconverged" case)
    ///   does an exact full comparison confirm.
    ///
    /// This is what makes the campaign's reconvergence probe cheap: the
    /// common not-yet-reconverged answer costs O(dirty pages), not
    /// O(memory).
    #[must_use]
    pub fn state_eq(&self, snapshot: &Snapshot) -> bool {
        self.icount == snapshot.icount
            && self.pc == snapshot.pc
            && self.value_producing == snapshot.value_producing
            && self.regs == snapshot.regs
            && self
                .fregs
                .iter()
                .zip(&snapshot.fregs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.mem_eq(snapshot)
    }

    /// Memory comparison half of [`Machine::state_eq`].
    fn mem_eq(&self, snapshot: &Snapshot) -> bool {
        if snapshot.mem_len != self.mem.len() || snapshot.pages.len() != self.mem.page_count() {
            return false;
        }
        if self.base_snapshot == snapshot.id {
            // Clean pages are bit-identical to this very snapshot by the
            // dirty-tracking invariant: comparing dirty pages is exact.
            return self.dirty_pages_match(snapshot);
        }
        if let Some(base_hashes) = &self.base_hashes {
            if base_hashes.len() == snapshot.page_hashes.len() {
                // Fast refutation: a differing hash proves differing
                // content (clean pages hash to the base snapshot's value),
                // and a page sharing the snapshot's `Arc` is identical by
                // construction.
                for (page, (&bh, &sh)) in base_hashes
                    .iter()
                    .zip(snapshot.page_hashes.iter())
                    .enumerate()
                {
                    if self
                        .mem
                        .shared_page(page)
                        .is_some_and(|a| Arc::ptr_eq(a, &snapshot.pages[page]))
                    {
                        continue;
                    }
                    if self.mem.is_dirty(page) {
                        if hash_page(self.mem.page_bytes(page)) != sh {
                            return false;
                        }
                    } else if bh != sh {
                        return false;
                    }
                }
                // No hash disagrees: confirm exactly (hash equality is
                // evidence, not proof; pointer-equal pages short-circuit).
                return self.mem.eq_pages(&snapshot.pages);
            }
        }
        self.mem.eq_pages(&snapshot.pages)
    }

    /// Exact comparison of this machine's dirty pages against `snapshot`
    /// (clean pages share the snapshot's `Arc`s or equal them by the
    /// dirty-tracking invariant).
    fn dirty_pages_match(&self, snapshot: &Snapshot) -> bool {
        let mut equal = true;
        self.mem.for_each_dirty(|page| {
            if equal && *self.mem.page_bytes(page) != *snapshot.pages[page] {
                equal = false;
            }
        });
        equal
    }

    /// Current value of an integer register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Current value of a floating-point register.
    #[must_use]
    pub fn freg(&self, r: FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Sets an integer register (harness use).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    /// Per-instruction execution counts (empty unless
    /// [`MachineConfig::profile`] was set).
    #[must_use]
    pub fn exec_counts(&self) -> &[u64] {
        &self.exec_counts
    }

    /// Dynamic instructions retired inside superblock traces so far —
    /// the superblock tier's coverage of this machine's execution
    /// (diagnostics; compare with [`Machine::instructions`]).
    #[must_use]
    pub fn superblock_instructions(&self) -> u64 {
        self.sb_retired
    }

    /// Dynamic instructions retired inside AOT native regions so far —
    /// the tier-4 coverage of this machine's execution (diagnostics;
    /// compare with [`Machine::instructions`]).
    #[must_use]
    pub fn aot_instructions(&self) -> u64 {
        self.aot_retired
    }

    // ------------------------------------------------------------------
    // host-side memory access (I/O injection and output capture)
    // ------------------------------------------------------------------

    fn host_range(&self, addr: u32, len: u32) -> Result<std::ops::Range<usize>, MemError> {
        let start = addr as usize;
        let end = start.checked_add(len as usize).ok_or(MemError { addr, len })?;
        if addr < DATA_BASE || end > self.mem.len() {
            return Err(MemError { addr, len });
        }
        Ok(start..end)
    }

    /// Reads guest memory (harness use; bounds-checked, alignment-free,
    /// may span pages — which is why this returns an owned buffer: the
    /// paged image has no contiguous slice to borrow).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, MemError> {
        let range = self.host_range(addr, len)?;
        let mut out = vec![0u8; len as usize];
        self.mem.copy_out(range.start, &mut out);
        Ok(out)
    }

    /// Writes guest memory (harness use; bounds-checked, alignment-free).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let range = self.host_range(addr, bytes.len() as u32)?;
        self.mem.copy_in(range.start, bytes);
        Ok(())
    }

    /// XORs one bit of the byte at guest address `addr` (memory-cell fault
    /// injection). The flip goes through the copy-on-write path, so it is
    /// tracked as a dirty page and survives checkpoint restores exactly
    /// like a guest store would.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is outside addressable memory.
    pub fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<(), MemError> {
        let range = self.host_range(addr, 1)?;
        self.mem.flip_bit(range.start, bit);
        Ok(())
    }

    /// Reads a little-endian 32-bit word from guest memory (harness use).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        let range = self.host_range(addr, 4)?;
        let mut b = [0u8; 4];
        self.mem.copy_out(range.start, &mut b);
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian 32-bit word to guest memory (harness use).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    // ------------------------------------------------------------------
    // guest-side memory access
    // ------------------------------------------------------------------

    #[inline]
    fn load(&self, addr: u32, width: MemWidth, signed: bool) -> Result<u32, CrashKind> {
        load_mem(&self.mem, addr, width, signed)
    }

    #[inline]
    fn store(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), CrashKind> {
        store_mem(&mut self.mem, addr, width, value)
    }

    #[inline]
    fn load_f64(&self, addr: u32) -> Result<f64, CrashKind> {
        load_f64_mem(&self.mem, addr)
    }

    #[inline]
    fn store_f64(&mut self, addr: u32, value: f64) -> Result<(), CrashKind> {
        store_f64_mem(&mut self.mem, addr, value)
    }

    // ------------------------------------------------------------------
    // execution
    // ------------------------------------------------------------------

    #[inline]
    fn write_int<H: WritebackHook>(&mut self, hook: &mut H, instr_index: usize, rd: Reg, v: u32) {
        self.value_producing += 1;
        let v = hook.int_writeback(instr_index, v);
        if !rd.is_zero() {
            self.regs[rd.index()] = v;
        }
    }

    #[inline]
    fn write_float<H: WritebackHook>(
        &mut self,
        hook: &mut H,
        instr_index: usize,
        fd: FReg,
        v: f64,
    ) {
        self.value_producing += 1;
        let v = hook.float_writeback(instr_index, v);
        self.fregs[fd.index()] = v;
    }

    /// Runs to completion with no hook — the single no-hook entry point
    /// shared by every hook-free caller.
    pub fn run_simple(&mut self) -> RunResult {
        self.run(&mut NoHook)
    }

    /// Bounded no-hook execution: [`Machine::run_until`] through the same
    /// shared [`NoHook`] path as [`Machine::run_simple`].
    pub fn run_until_simple(&mut self, target: u64) -> BoundedRun {
        self.run_until(&mut NoHook, target)
    }

    /// Runs to completion, invoking `hook` on every value-producing
    /// writeback. Dispatches over the predecoded micro-op pipeline; the
    /// `PROFILE`/`BOUNDED` const generics mean an unprofiled unbounded run
    /// carries zero per-instruction overhead for either feature.
    pub fn run<H: WritebackHook>(&mut self, hook: &mut H) -> RunResult {
        let result = if self.profile {
            self.run_decoded::<H, true, false>(hook, 0)
        } else {
            self.run_decoded::<H, false, false>(hook, 0)
        };
        match result {
            BoundedRun::Finished(result) => result,
            BoundedRun::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Runs until the dynamic instruction count reaches `target` (absolute,
    /// not relative), stopping cleanly at the instruction boundary, or until
    /// the program finishes — whichever comes first.
    ///
    /// A target at or below the current count pauses immediately without
    /// executing anything; a target beyond the program's natural end returns
    /// [`BoundedRun::Finished`]. The bounded and unbounded paths share one
    /// monomorphized dispatch loop, so `run_until` pays no per-instruction
    /// dispatch penalty over [`Machine::run`] — and pauses are invisible:
    /// fused micro-op pairs never straddle the target boundary.
    pub fn run_until<H: WritebackHook>(&mut self, hook: &mut H, target: u64) -> BoundedRun {
        if self.profile {
            self.run_decoded::<H, true, true>(hook, target)
        } else {
            self.run_decoded::<H, false, true>(hook, target)
        }
    }

    /// Runs to completion over the original [`Instr`] tree-walking
    /// interpreter — the reference pipeline the predecoded dispatch is
    /// differentially tested against. Slower than [`Machine::run`];
    /// observably identical.
    pub fn run_reference<H: WritebackHook>(&mut self, hook: &mut H) -> RunResult {
        match self.run_loop_reference::<H, false>(hook, 0) {
            BoundedRun::Finished(result) => result,
            BoundedRun::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Bounded execution over the reference interpreter (see
    /// [`Machine::run_reference`]).
    pub fn run_until_reference<H: WritebackHook>(
        &mut self,
        hook: &mut H,
        target: u64,
    ) -> BoundedRun {
        self.run_loop_reference::<H, true>(hook, target)
    }

    /// Runs to completion over tier 4: ahead-of-time compiled native
    /// regions (see the [`crate::aot`] module docs), falling back to the
    /// interpreter tiers wherever native code cannot go. Observably
    /// identical to every other tier on outcome, output, instruction
    /// counts, profile counts, and crash identity.
    ///
    /// Hooks that actually observe writebacks (`H::IS_NOOP == false`)
    /// cannot run natively; such runs execute entirely on the
    /// superblock/fused dispatch tier.
    ///
    /// # Panics
    ///
    /// Panics if `aot` was not generated from this machine's program
    /// (code length mismatch) — a caller contract violation.
    pub fn run_aot<H: WritebackHook>(&mut self, hook: &mut H, aot: &AotProgram) -> RunResult {
        match self.run_aot_loop::<H, false>(hook, aot, 0) {
            BoundedRun::Finished(result) => result,
            BoundedRun::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Bounded execution over tier 4 (see [`Machine::run_aot`] and
    /// [`Machine::run_until`]): pauses exactly at the `target` instruction
    /// boundary. Native code never straddles a pause — a block that would
    /// cross the boundary is handed to the interpreter, which stops at
    /// precisely the target.
    ///
    /// # Panics
    ///
    /// Panics if `aot` was not generated from this machine's program.
    pub fn run_until_aot<H: WritebackHook>(
        &mut self,
        hook: &mut H,
        aot: &AotProgram,
        target: u64,
    ) -> BoundedRun {
        self.run_aot_loop::<H, true>(hook, aot, target)
    }

    /// The tier-4 driver loop behind [`Machine::run_aot`] and
    /// [`Machine::run_until_aot`]: alternates native region execution with
    /// interpreter fallback, mirroring the check order of the interpreter
    /// loops (pause, watchdog, fetch) so every boundary observation is
    /// bit-identical.
    fn run_aot_loop<H: WritebackHook, const BOUNDED: bool>(
        &mut self,
        hook: &mut H,
        aot: &AotProgram,
        target: u64,
    ) -> BoundedRun {
        assert_eq!(
            aot.code_len,
            self.program.code.len(),
            "AOT program does not match the instruction stream"
        );
        if !H::IS_NOOP {
            // The hook must observe every individual writeback — exactly
            // what native code compiles away. Run the whole thing on the
            // interpreter's fastest tier instead.
            return if self.profile {
                self.run_decoded::<H, true, BOUNDED>(hook, target)
            } else {
                self.run_decoded::<H, false, BOUNDED>(hook, target)
            };
        }
        let run_region = if self.profile {
            aot.run_profiled
        } else {
            aot.run
        };
        let stop = if BOUNDED {
            target.min(self.max_instructions)
        } else {
            self.max_instructions
        };
        let code_len = aot.code_len as u64;
        loop {
            if BOUNDED && self.icount >= target {
                return BoundedRun::Paused;
            }
            if self.icount >= self.max_instructions {
                return self.finish(Outcome::InfiniteRun);
            }
            if self.pc >= code_len {
                return self.finish(Outcome::Crashed(CrashKind::PcOutOfRange { pc: self.pc }));
            }
            let entered_at = self.icount;
            let exit = {
                let mut ctx = AotCtx::new(
                    &mut self.regs,
                    &mut self.fregs,
                    &mut self.mem,
                    self.exec_counts.as_mut_slice(),
                    self.pc,
                    self.icount,
                    self.value_producing,
                    stop,
                );
                let exit = run_region(&mut ctx);
                let (pc, icount, vp) = ctx.state();
                self.pc = pc;
                self.icount = icount;
                self.value_producing = vp;
                exit
            };
            self.aot_retired += self.icount - entered_at;
            match exit {
                AotExit::Halted => return self.finish(Outcome::Halted),
                AotExit::Crashed(kind) => return self.finish(Outcome::Crashed(kind)),
                AotExit::Bounded => {
                    // The next whole block would cross the pause/watchdog
                    // boundary: the interpreter retires the sub-block tail
                    // and stops exactly at the boundary (or finishes).
                    return if self.profile {
                        self.run_decoded::<H, true, BOUNDED>(hook, target)
                    } else {
                        self.run_decoded::<H, false, BOUNDED>(hook, target)
                    };
                }
                AotExit::Escape => {
                    // No compiled entry at the current pc. The region may
                    // have retired instructions before escaping (e.g. an
                    // indirect jump to an uncompiled target), so re-check
                    // the boundaries the loop head checked, then retire
                    // exactly one instruction on the interpreter and retry
                    // native entry — a mid-block resume pc walks forward
                    // to the next block boundary this way.
                    if BOUNDED && self.icount >= target {
                        return BoundedRun::Paused;
                    }
                    if self.icount >= self.max_instructions {
                        return self.finish(Outcome::InfiniteRun);
                    }
                    if self.pc >= code_len {
                        return self
                            .finish(Outcome::Crashed(CrashKind::PcOutOfRange { pc: self.pc }));
                    }
                    let one = self.icount + 1;
                    let step = if self.profile {
                        self.run_decoded::<H, true, true>(hook, one)
                    } else {
                        self.run_decoded::<H, false, true>(hook, one)
                    };
                    match step {
                        BoundedRun::Paused => {}
                        BoundedRun::Finished(result) => return BoundedRun::Finished(result),
                    }
                }
            }
        }
    }

    /// The micro-op dispatch loop behind [`Machine::run`] and
    /// [`Machine::run_until`].
    ///
    /// `PROFILE` hoists the per-instruction `exec_counts` update out of the
    /// unprofiled monomorphization entirely; `BOUNDED` compiles the target
    /// comparison out of unbounded runs. `pc`/`icount`/`value_producing`
    /// live in locals and are synced back to the architectural fields at
    /// every exit, so pauses and crashes observe exactly the reference
    /// interpreter's state.
    ///
    /// Fused pairs: when a micro-op carries the fuse flag, actually *fell
    /// through* ([`Step::Next`]), and the second half would still be
    /// strictly before the next boundary (`run_until` target or watchdog),
    /// both halves retire in this iteration — each bumping
    /// `icount`/`exec_counts` and passing its writeback through the hook
    /// individually. Near a boundary (or after a taken branch, crash, or
    /// halt in the head) the head's effect stands alone, which is what
    /// makes pauses invisible to fusion.
    fn run_decoded<H: WritebackHook, const PROFILE: bool, const BOUNDED: bool>(
        &mut self,
        hook: &mut H,
        target: u64,
    ) -> BoundedRun {
        let decoded = Arc::clone(&self.decoded);
        let ops = decoded.ops();
        let fpool = decoded.fpool();
        let superblocks = decoded.superblocks();
        let sb_ops = decoded.sb_ops();
        let sb_entry = decoded.sb_entry();
        // The nearest instruction-count boundary at which dispatch must
        // re-check before executing: a fused pair may only retire its
        // second half when that half's pre-execution checks would pass.
        let stop = if BOUNDED {
            target.min(self.max_instructions)
        } else {
            self.max_instructions
        };
        let max_instructions = self.max_instructions;
        let mut pc = self.pc;
        let mut icount = self.icount;
        let mut vp = self.value_producing;
        let outcome = {
            // Disjoint field borrows: the compiler sees the register
            // files, paged memory image, and profile counters as
            // non-aliasing, so a guest store can never invalidate a cached
            // register value or slice length.
            let regs = &mut self.regs;
            let fregs = &mut self.fregs;
            let mem = &mut self.mem;
            let exec_counts = self.exec_counts.as_mut_slice();
            loop {
                if BOUNDED && icount >= target {
                    break None;
                }
                if icount >= max_instructions {
                    break Some(Outcome::InfiniteRun);
                }
                if pc >= ops.len() as u64 {
                    break Some(Outcome::Crashed(CrashKind::PcOutOfRange { pc }));
                }
                let at = pc as usize;
                // Superblock tier: when a trace starts at `pc` and retiring
                // its full length cannot cross the pause/watchdog boundary,
                // execute the whole straight-line body with per-instruction
                // fetch/bounds/watchdog checks hoisted out. Near a boundary
                // (or at a mid-trace pc, e.g. after a snapshot restore) the
                // fused per-op tier below handles the instruction instead.
                let sb = sb_entry[at];
                if sb != 0 {
                    let info = superblocks[(sb - 1) as usize];
                    if icount + u64::from(info.instrs) <= stop {
                        let body = &sb_ops
                            [info.start as usize..info.start as usize + info.elems as usize];
                        match run_superblock::<H, PROFILE>(
                            regs,
                            fregs,
                            mem,
                            exec_counts,
                            &mut vp,
                            hook,
                            body,
                            fpool,
                        ) {
                            SbExit::Continue {
                                executed,
                                next_pc,
                            } => {
                                icount += executed;
                                self.sb_retired += executed;
                                pc = next_pc;
                                continue;
                            }
                            SbExit::Done {
                                executed,
                                final_pc,
                                outcome,
                            } => {
                                icount += executed;
                                self.sb_retired += executed;
                                pc = final_pc;
                                break Some(outcome);
                            }
                        }
                    }
                }
                let m = ops[at];
                icount += 1;
                if PROFILE {
                    exec_counts[at] += 1;
                }
                let mut step = exec_op(regs, fregs, mem, &mut vp, hook, at, m, fpool);
                if m.fuse != 0 && icount < stop && matches!(step, Step::Next) {
                    // Fused pair: the head fell through, carries the fuse
                    // flag (a successor exists), and the successor's
                    // pre-execution checks would pass — retire the
                    // successor in the same iteration, skipping one round
                    // of outer bounds/watchdog/pause checks. The second
                    // dispatch is a distinct inlined copy of `exec_op`,
                    // giving the hot path two alternating indirect-branch
                    // sites, which predict better than one shared site.
                    let at2 = at + 1;
                    icount += 1;
                    if PROFILE {
                        exec_counts[at2] += 1;
                    }
                    pc += 1;
                    step = exec_op(regs, fregs, mem, &mut vp, hook, at2, ops[at2], fpool);
                }
                match step {
                    Step::Next => pc += 1,
                    Step::Jump(t) => pc = t,
                    Step::Halt => break Some(Outcome::Halted),
                    Step::Crash(kind) => break Some(Outcome::Crashed(kind)),
                }
            }
        };
        self.pc = pc;
        self.icount = icount;
        self.value_producing = vp;
        match outcome {
            None => BoundedRun::Paused,
            Some(outcome) => self.finish(outcome),
        }
    }


    /// The dispatch loop of the reference [`Instr`] interpreter, behind
    /// [`Machine::run_reference`] and [`Machine::run_until_reference`].
    /// `BOUNDED` is a const generic so the target comparison is compiled
    /// out entirely for unbounded runs.
    #[allow(clippy::too_many_lines)]
    fn run_loop_reference<H: WritebackHook, const BOUNDED: bool>(
        &mut self,
        hook: &mut H,
        target: u64,
    ) -> BoundedRun {
        let code = &self.program.code;
        loop {
            if BOUNDED && self.icount >= target {
                return BoundedRun::Paused;
            }
            if self.icount >= self.max_instructions {
                return self.finish(Outcome::InfiniteRun);
            }
            let Some(&instr) = usize::try_from(self.pc).ok().and_then(|pc| code.get(pc)) else {
                return self.finish(Outcome::Crashed(CrashKind::PcOutOfRange { pc: self.pc }));
            };
            let at = self.pc as usize;
            self.icount += 1;
            if self.profile {
                self.exec_counts[at] += 1;
            }
            let mut next = self.pc + 1;
            match instr {
                Instr::Alu { op, rd, rs, rt } => {
                    let a = self.regs[rs.index()];
                    let b = self.regs[rt.index()];
                    let v = eval_alu(op, a, b);
                    self.write_int(hook, at, rd, v);
                }
                Instr::AluImm { op, rd, rs, imm } => {
                    let a = self.regs[rs.index()];
                    let v = eval_alu(op, a, imm as u32);
                    self.write_int(hook, at, rd, v);
                }
                Instr::Li { rd, imm } => self.write_int(hook, at, rd, imm as u32),
                Instr::Load {
                    width,
                    signed,
                    rd,
                    base,
                    off,
                } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    match self.load(addr, width, signed) {
                        Ok(v) => self.write_int(hook, at, rd, v),
                        Err(k) => return self.finish(Outcome::Crashed(k)),
                    }
                }
                Instr::Store {
                    width, rs, base, off,
                } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    let v = self.regs[rs.index()];
                    if let Err(k) = self.store(addr, width, v) {
                        return self.finish(Outcome::Crashed(k));
                    }
                }
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    if cond.eval(self.regs[rs.index()], self.regs[rt.index()]) {
                        next = target as u64;
                    }
                }
                Instr::Jump { target } => next = target as u64,
                Instr::Call { target } => {
                    self.write_int(hook, at, reg::RA, (self.pc + 1) as u32);
                    next = target as u64;
                }
                Instr::JumpReg { rs } => next = u64::from(self.regs[rs.index()]),
                Instr::Fpu { op, fd, fs, ft } => {
                    let a = self.fregs[fs.index()];
                    let b = self.fregs[ft.index()];
                    let v = match op {
                        FpuOp::Add => a + b,
                        FpuOp::Sub => a - b,
                        FpuOp::Mul => a * b,
                        FpuOp::Div => a / b,
                        FpuOp::Min => a.min(b),
                        FpuOp::Max => a.max(b),
                    };
                    self.write_float(hook, at, fd, v);
                }
                Instr::FMov { fd, fs } => {
                    let v = self.fregs[fs.index()];
                    self.write_float(hook, at, fd, v);
                }
                Instr::FAbs { fd, fs } => {
                    let v = self.fregs[fs.index()].abs();
                    self.write_float(hook, at, fd, v);
                }
                Instr::FNeg { fd, fs } => {
                    let v = -self.fregs[fs.index()];
                    self.write_float(hook, at, fd, v);
                }
                Instr::FSqrt { fd, fs } => {
                    let v = self.fregs[fs.index()].sqrt();
                    self.write_float(hook, at, fd, v);
                }
                Instr::FLi { fd, value } => self.write_float(hook, at, fd, value),
                Instr::FLoad { fd, base, off } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    match self.load_f64(addr) {
                        Ok(v) => self.write_float(hook, at, fd, v),
                        Err(k) => return self.finish(Outcome::Crashed(k)),
                    }
                }
                Instr::FStore { fs, base, off } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    let v = self.fregs[fs.index()];
                    if let Err(k) = self.store_f64(addr, v) {
                        return self.finish(Outcome::Crashed(k));
                    }
                }
                Instr::CvtIF { fd, rs } => {
                    let v = self.regs[rs.index()] as i32 as f64;
                    self.write_float(hook, at, fd, v);
                }
                Instr::CvtFI { rd, fs } => {
                    let f = self.fregs[fs.index()];
                    let v = if f.is_nan() {
                        0
                    } else {
                        f.clamp(i32::MIN as f64, i32::MAX as f64) as i32 as u32
                    };
                    self.write_int(hook, at, rd, v);
                }
                Instr::FCmp { op, rd, fs, ft } => {
                    let v = u32::from(op.eval(self.fregs[fs.index()], self.fregs[ft.index()]));
                    self.write_int(hook, at, rd, v);
                }
                Instr::Halt => return self.finish(Outcome::Halted),
                Instr::Nop => {}
            }
            self.pc = next;
        }
    }

    fn finish(&self, outcome: Outcome) -> BoundedRun {
        BoundedRun::Finished(RunResult {
            outcome,
            instructions: self.icount,
            value_producing: self.value_producing,
        })
    }
}

// ---------------------------------------------------------------------
// Guest memory primitives live in the `mem` module (`load_mem`,
// `store_mem`, `load_f64_mem`, `store_f64_mem` over the paged
// copy-on-write image); the writeback helpers below stay here. All are
// free functions over disjoint `&mut` borrows rather than methods so the
// micro-op dispatch loop can hand the compiler non-aliasing views of the
// register files and the memory image — a store can then never
// invalidate a cached register value. The reference interpreter reaches
// them through thin `Machine` method wrappers, so both pipelines share
// one implementation of the memory model.
// ---------------------------------------------------------------------

/// Integer writeback through the hook (raw register index, masked so the
/// compiler emits no bounds check). Observably identical to
/// [`Machine::write_int`]: the hook sees every writeback, including
/// `$zero` destinations, whose value is then discarded.
#[inline(always)]
fn wint<H: WritebackHook>(
    regs: &mut [u32; 32],
    vp: &mut u64,
    hook: &mut H,
    at: usize,
    rd: u8,
    v: u32,
) {
    *vp += 1;
    let v = hook.int_writeback(at, v);
    if rd != 0 {
        regs[(rd & 31) as usize] = v;
    }
}

/// Floating-point writeback through the hook (raw register index).
#[inline(always)]
fn wfloat<H: WritebackHook>(
    fregs: &mut [f64; 32],
    vp: &mut u64,
    hook: &mut H,
    at: usize,
    fd: u8,
    v: f64,
) {
    *vp += 1;
    let v = hook.float_writeback(at, v);
    fregs[(fd & 31) as usize] = v;
}

/// How one pass through a superblock trace ended.
enum SbExit {
    /// The trace was left at an instruction boundary (full fall-out, side
    /// exit, or internal transfer leaving the trace): `executed`
    /// instructions retired and control continues at `next_pc`.
    Continue {
        /// Instructions retired by this pass.
        executed: u64,
        /// Program counter to continue dispatch at.
        next_pc: u64,
    },
    /// The run finished inside the trace (halt or crash).
    Done {
        /// Instructions retired by this pass (including the final one).
        executed: u64,
        /// Architectural `pc` of the halting/faulting instruction, exactly
        /// as the per-op tiers would leave it.
        final_pc: u64,
        /// How the run ended.
        outcome: Outcome,
    },
}

/// Evaluates the ALU half of a combo element: the micro-op is one of the
/// 32 ALU discriminants (register-register below 16, register-immediate
/// from 16, each block in [`AluOp::ALL`] order — pinned by a decode test),
/// so the operation and operand-2 source fall out of the discriminant.
#[inline(always)]
fn alu_flat(regs: &[u32; 32], m: MicroOp) -> u32 {
    let d = m.op as u8;
    let lhs = regs[(m.b & 31) as usize];
    let rhs = if d < 16 {
        regs[(m.c & 31) as usize]
    } else {
        m.imm as u32
    };
    eval_alu(AluOp::ALL[(d & 15) as usize], lhs, rhs)
}

/// Evaluates the load half of a combo element.
#[inline(always)]
fn load_flat(mem: &PagedMem, addr: u32, op: MOp) -> Result<u32, CrashKind> {
    match op {
        MOp::Lb => load_mem(mem, addr, MemWidth::Byte, true),
        MOp::Lbu => load_mem(mem, addr, MemWidth::Byte, false),
        MOp::Lh => load_mem(mem, addr, MemWidth::Half, true),
        MOp::Lhu => load_mem(mem, addr, MemWidth::Half, false),
        _ => load_mem(mem, addr, MemWidth::Word, false),
    }
}

/// Evaluates the store half of a combo element.
#[inline(always)]
fn store_flat(
    mem: &mut PagedMem,
    addr: u32,
    op: MOp,
    value: u32,
) -> Result<(), CrashKind> {
    match op {
        MOp::Sb => store_mem(mem, addr, MemWidth::Byte, value),
        MOp::Sh => store_mem(mem, addr, MemWidth::Half, value),
        _ => store_mem(mem, addr, MemWidth::Word, value),
    }
}

/// Evaluates the conditional-branch half of a combo element.
#[inline(always)]
fn branch_flat(op: MOp, a: u32, b: u32) -> bool {
    match op {
        MOp::Beq => a == b,
        MOp::Bne => a != b,
        MOp::Blt => (a as i32) < (b as i32),
        MOp::Bge => (a as i32) >= (b as i32),
        MOp::Bltu => a < b,
        _ => a >= b,
    }
}

/// Executes one superblock trace to its first exit. The caller has already
/// proven the full trace (in instructions) fits below the watchdog/pause
/// boundary, so the body runs with no per-instruction fetch, bounds, or
/// boundary checks — only the element dispatch itself, plus `exec_counts`
/// updates when `PROFILE` (profiling indices must stay exact per
/// instruction). Combo elements retire two instructions per dispatch,
/// with both halves individually counted, hooked, and crash-precise.
///
/// Continuation rules (see [`SuperOp`]):
///
/// * a fall-through retirement stays in-trace iff the element's
///   sequential flag is set (the builder proved the next element resumes
///   at the element's last instruction plus one), with no index
///   comparison at all;
/// * a transfer stays in-trace iff the next element's `at` equals the
///   dynamic target — true for traced-through jumps, calls, and honest
///   returns; false for side exits and corrupted return addresses.
///
/// Exits reconstruct the architectural `pc` from the element's original
/// instruction indices.
///
/// Deliberately *not* inlined into the dispatch loop: trace entries are
/// amortized over whole traces, and a standalone symbol keeps the trace
/// executor's code layout independent of the outer loop's (interpreter
/// throughput is notoriously alignment-sensitive).
#[inline(never)]
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_superblock<H: WritebackHook, const PROFILE: bool>(
    regs: &mut [u32; 32],
    fregs: &mut [f64; 32],
    mem: &mut PagedMem,
    exec_counts: &mut [u64],
    vp: &mut u64,
    hook: &mut H,
    body: &[SuperOp],
    fpool: &[f64],
) -> SbExit {
    use crate::decode::{
        CH3_FIRST, CH3_SLLI_ADD_LW, CH_ADDI_ADD, CH_ADDI_LW, CH_ADDI_SLT, CH_ADDI_SLTI,
        CH_ADD_ADD, CH_ADD_ADDI, CH_ADD_LBU, CH_ADD_LW, CH_ADD_SRAI, CH_ADD_SUB, CH_ANDI_SLLI,
        CH_LBU_ADD, CH_LBU_SUB, CH_LW_ADD, CH_LW_ADDI, CH_LW_BEQ, CH_LW_LW, CH_LW_SLLI,
        CH_LW_XOR, CH_MULI_ADD, CH_MULI_SUB, CH_MUL_ADD, CH_OR_OR, CH_SLLI_ADD, CH_SLTI_ADD,
        CH_SLTI_BNE, CH_SLT_SUB, CH_SRAI_XOR, CH_SRLI_ANDI, CH_SUB_ADD, CH_SUB_MUL, CH_SUB_SRAI,
        CH_ADDI_BLT, CH_ADDI_MULI, CH_ADD_SLLI, CH_ADD_SW, CH_LBU_LBU, CH_MULI_SLLI,
        CH_MUL_SUB, CH_SLT_XORI, CH_SUB_LBU, CH_SW_ADDI, CH_FADD_ADDI, CH_FADD_FADD, CH_FLD_FMUL, CH_FMUL_FADD,
        CH_MULI_MULI, CH_ADD_FLD, CH_SUB_SUB, CH3_ADDI_SLTI_BNE, CH3_ADDI_SLT_SUB,
        CH_SW_SW, CH_XOR_SUB, CH3_ADD_FLD_FMUL, CH3_ADD_LW_ADD, CH3_ANDI_SLLI_ADD,
        CH3_FLD_FMUL_FADD, CH3_LW_ADD_ADD, CH3_LW_LW_LW, CH3_SLLI_ADD_FLD, CH3_SW_SW_SW,
        COMBO_ALU_ALU, COMBO_ALU_BRANCH, COMBO_ALU_LOAD, COMBO_ALU_STORE, COMBO_ANY_ANY,
        COMBO_LOAD_ALU, COMBO_NONE, COMBO_STORE_ALU, COMBO_STORE_STORE,
    };
    let mut i = 0usize;
    let mut retired = 0u64;
    // `vp` arrives as `&mut u64`: left as-is, every writeback would pay a
    // load/add/store through the pointer. Shadowing it with a local (and
    // syncing once at every exit, via the labeled block) lets the counter
    // live in a register for the whole trace, like the fused loop's.
    let mut vpl = *vp;
    let result = 'exec: {
        let vp = &mut vpl;
    macro_rules! exit_seq {
        ($s:expr, $last_at:expr) => {{
            if $s.op.fuse == 0 {
                // Sequential flag clear: the next element (if any) does
                // not resume at `last_at + 1` — leave the trace.
                break 'exec SbExit::Continue {
                    executed: retired,
                    next_pc: u64::from($last_at) + 1,
                };
            }
            i += 1;
        }};
    }
    macro_rules! exit_jump {
        ($t:expr) => {{
            let t = $t;
            i += 1;
            if i == body.len() || u64::from(body[i].at) != t {
                break 'exec SbExit::Continue {
                    executed: retired,
                    next_pc: t,
                };
            }
        }};
    }
    // -----------------------------------------------------------------
    // Specialized chain halves (see the `CH_*` tags in `decode.rs`): the
    // ALU operation, operand form, load width/sign, and branch condition
    // are all static, so each expansion is straight-line code — no
    // `AluOp::ALL` jump table, no width dispatch. Every half still reads
    // its operands from the register file *after* the previous half's
    // writeback (hooks may tamper; `$zero` discards), which is what keeps
    // the chains bit-identical to sequential execution.
    // -----------------------------------------------------------------
    /// First/second ALU half of a chain: `op1`/`op2` picks the micro-op,
    /// `rr`/`ri` the operand-2 source, `$aop` the constant operation.
    macro_rules! chain_alu {
        ($s:expr, op1, rr, $aop:expr) => {{
            let v = eval_alu($aop, regs[($s.op.b & 31) as usize], regs[($s.op.c & 31) as usize]);
            wint(regs, vp, hook, $s.at as usize, $s.op.a, v);
        }};
        ($s:expr, op1, ri, $aop:expr) => {{
            let v = eval_alu($aop, regs[($s.op.b & 31) as usize], $s.op.imm as u32);
            wint(regs, vp, hook, $s.at as usize, $s.op.a, v);
        }};
        ($s:expr, op2, rr, $aop:expr) => {{
            let v = eval_alu(
                $aop,
                regs[($s.op2.b & 31) as usize],
                regs[($s.op2.c & 31) as usize],
            );
            wint(regs, vp, hook, $s.at2 as usize, $s.op2.a, v);
        }};
        ($s:expr, op2, ri, $aop:expr) => {{
            let v = eval_alu($aop, regs[($s.op2.b & 31) as usize], $s.op2.imm as u32);
            wint(regs, vp, hook, $s.at2 as usize, $s.op2.a, v);
        }};
    }
    /// Constant-width load as the chain's *second* half (a crash exits
    /// with the load's pc; the first half's retirement stands).
    macro_rules! chain_ld2 {
        ($s:expr, $width:expr, $signed:expr) => {{
            let addr = regs[($s.op2.b & 31) as usize].wrapping_add($s.op2.imm as u32);
            match load_mem(mem, addr, $width, $signed) {
                Ok(v) => wint(regs, vp, hook, $s.at2 as usize, $s.op2.a, v),
                Err(kind) => {
                    break 'exec SbExit::Done {
                        executed: retired,
                        final_pc: u64::from($s.at2),
                        outcome: Outcome::Crashed(kind),
                    }
                }
            }
        }};
    }
    /// Constant-width load as the chain's *first* half (a crash un-counts
    /// the never-executed second half, like the generic load/ALU arm).
    macro_rules! chain_ld1 {
        ($s:expr, $width:expr, $signed:expr) => {{
            let addr = regs[($s.op.b & 31) as usize].wrapping_add($s.op.imm as u32);
            match load_mem(mem, addr, $width, $signed) {
                Ok(v) => wint(regs, vp, hook, $s.at as usize, $s.op.a, v),
                Err(kind) => {
                    retired -= 1;
                    if PROFILE {
                        exec_counts[$s.at2 as usize] -= 1;
                    }
                    break 'exec SbExit::Done {
                        executed: retired,
                        final_pc: u64::from($s.at),
                        outcome: Outcome::Crashed(kind),
                    };
                }
            }
        }};
    }
    /// Constant-width store as the chain's *second* half (stores are not
    /// value-producing: no hook, no `vp` bump — exactly like the single-op
    /// arms).
    macro_rules! chain_st2 {
        ($s:expr, $width:expr) => {{
            let addr = regs[($s.op2.b & 31) as usize].wrapping_add($s.op2.imm as u32);
            match store_mem(mem, addr, $width, regs[($s.op2.a & 31) as usize]) {
                Ok(()) => {}
                Err(kind) => {
                    break 'exec SbExit::Done {
                        executed: retired,
                        final_pc: u64::from($s.at2),
                        outcome: Outcome::Crashed(kind),
                    }
                }
            }
        }};
    }
    /// Constant-width store as the chain's *first* half (a crash un-counts
    /// the never-executed second half).
    macro_rules! chain_st1 {
        ($s:expr, $width:expr) => {{
            let addr = regs[($s.op.b & 31) as usize].wrapping_add($s.op.imm as u32);
            match store_mem(mem, addr, $width, regs[($s.op.a & 31) as usize]) {
                Ok(()) => {}
                Err(kind) => {
                    retired -= 1;
                    if PROFILE {
                        exec_counts[$s.at2 as usize] -= 1;
                    }
                    break 'exec SbExit::Done {
                        executed: retired,
                        final_pc: u64::from($s.at),
                        outcome: Outcome::Crashed(kind),
                    };
                }
            }
        }};
    }
    /// Constant-condition conditional branch closing a chain.
    macro_rules! chain_br2 {
        ($s:expr, $cmp:expr) => {{
            let cmp = $cmp;
            if cmp(
                regs[($s.op2.a & 31) as usize],
                regs[($s.op2.b & 31) as usize],
            ) {
                exit_jump!(u64::from($s.op2.imm as u32));
            } else {
                exit_seq!($s, $s.at2);
            }
        }};
    }
    /// One trace element (single or combo pair): each expansion is a
    /// distinct set of inlined dispatch sites, and the loop body expands
    /// it four times so consecutive elements rotate across four
    /// branch-predictor sites — the same courtesy the fused tier gets
    /// from its head/successor split, doubled (measured best at 4 on the
    /// dev box; 6 regresses on i-cache).
    macro_rules! element {
        () => {{
        let s = &body[i];
        let combo = s.op2.fuse;
        if combo == COMBO_NONE {
            retired += 1;
            if PROFILE {
                exec_counts[s.at as usize] += 1;
            }
            match exec_op(regs, fregs, mem, vp, hook, s.at as usize, s.op, fpool) {
                Step::Next => exit_seq!(s, s.at),
                Step::Jump(t) => exit_jump!(t),
                Step::Halt => {
                    break 'exec SbExit::Done {
                        executed: retired,
                        final_pc: u64::from(s.at),
                        outcome: Outcome::Halted,
                    }
                }
                Step::Crash(kind) => {
                    break 'exec SbExit::Done {
                        executed: retired,
                        final_pc: u64::from(s.at),
                        outcome: Outcome::Crashed(kind),
                    }
                }
            }
        } else {
        // Combo pair or specialized chain: one dispatch, two (or three)
        // architecturally distinct retirements (separate
        // icount/profile/hook events per constituent instruction).
        if combo >= CH3_FIRST {
            retired += 3;
            if PROFILE {
                exec_counts[s.at as usize] += 1;
                exec_counts[s.at as usize + 1] += 1;
                exec_counts[s.at2 as usize] += 1;
            }
        } else {
            retired += 2;
            if PROFILE {
                exec_counts[s.at as usize] += 1;
                exec_counts[s.at2 as usize] += 1;
            }
        }
        match combo {
            COMBO_ALU_ALU => {
                let v1 = alu_flat(regs, s.op);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = alu_flat(regs, s.op2);
                wint(regs, vp, hook, s.at2 as usize, s.op2.a, v2);
                exit_seq!(s, s.at2);
            }
            COMBO_ALU_LOAD => {
                let v1 = alu_flat(regs, s.op);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let addr = regs[(s.op2.b & 31) as usize].wrapping_add(s.op2.imm as u32);
                match load_flat(mem, addr, s.op2.op) {
                    Ok(v) => {
                        wint(regs, vp, hook, s.at2 as usize, s.op2.a, v);
                        exit_seq!(s, s.at2);
                    }
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            COMBO_LOAD_ALU => {
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_flat(mem, addr, s.op.op) {
                    Ok(v) => wint(regs, vp, hook, s.at as usize, s.op.a, v),
                    Err(kind) => {
                        // The first half crashed: the second never
                        // executed (and must not be counted).
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v2 = alu_flat(regs, s.op2);
                wint(regs, vp, hook, s.at2 as usize, s.op2.a, v2);
                exit_seq!(s, s.at2);
            }
            COMBO_ALU_BRANCH => {
                let v1 = alu_flat(regs, s.op);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let a = regs[(s.op2.a & 31) as usize];
                let b = regs[(s.op2.b & 31) as usize];
                if branch_flat(s.op2.op, a, b) {
                    exit_jump!(u64::from(s.op2.imm as u32));
                } else {
                    exit_seq!(s, s.at2);
                }
            }
            COMBO_ANY_ANY => {
                // Catch-all pair: both halves through the full single-op
                // executor — the trace-tier mirror of the fused tier's
                // dynamic pairing. The builder guarantees the head either
                // falls through or crashes.
                match exec_op(regs, fregs, mem, vp, hook, s.at as usize, s.op, fpool) {
                    Step::Next => {}
                    Step::Crash(kind) => {
                        // The head crashed: the second half never executed
                        // (and must not be counted).
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                    Step::Jump(_) | Step::Halt => {
                        unreachable!("ANY_ANY head always falls through or crashes")
                    }
                }
                match exec_op(regs, fregs, mem, vp, hook, s.at2 as usize, s.op2, fpool) {
                    Step::Next => exit_seq!(s, s.at2),
                    Step::Jump(t) => exit_jump!(t),
                    Step::Halt => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Halted,
                        }
                    }
                    Step::Crash(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            COMBO_ALU_STORE => {
                let v1 = alu_flat(regs, s.op);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let addr = regs[(s.op2.b & 31) as usize].wrapping_add(s.op2.imm as u32);
                match store_flat(mem, addr, s.op2.op, regs[(s.op2.a & 31) as usize]) {
                    Ok(()) => exit_seq!(s, s.at2),
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            COMBO_STORE_ALU => {
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match store_flat(mem, addr, s.op.op, regs[(s.op.a & 31) as usize]) {
                    Ok(()) => {}
                    Err(kind) => {
                        // The first half crashed: the second never
                        // executed (and must not be counted).
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v2 = alu_flat(regs, s.op2);
                wint(regs, vp, hook, s.at2 as usize, s.op2.a, v2);
                exit_seq!(s, s.at2);
            }
            COMBO_STORE_STORE => {
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match store_flat(mem, addr, s.op.op, regs[(s.op.a & 31) as usize]) {
                    Ok(()) => {}
                    Err(kind) => {
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let addr = regs[(s.op2.b & 31) as usize].wrapping_add(s.op2.imm as u32);
                match store_flat(mem, addr, s.op2.op, regs[(s.op2.a & 31) as usize]) {
                    Ok(()) => exit_seq!(s, s.at2),
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            // --- specialized 2-op chains (census-dominant concrete
            // opcode pairs; straight-line, no inner dispatch) ---
            CH_SLLI_ADD => {
                chain_alu!(s, op1, ri, AluOp::Sll);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ADD_ADD => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ADDI_SLTI => {
                chain_alu!(s, op1, ri, AluOp::Add);
                chain_alu!(s, op2, ri, AluOp::Slt);
                exit_seq!(s, s.at2);
            }
            CH_SUB_SRAI => {
                chain_alu!(s, op1, rr, AluOp::Sub);
                chain_alu!(s, op2, ri, AluOp::Sra);
                exit_seq!(s, s.at2);
            }
            CH_SRAI_XOR => {
                chain_alu!(s, op1, ri, AluOp::Sra);
                chain_alu!(s, op2, rr, AluOp::Xor);
                exit_seq!(s, s.at2);
            }
            CH_XOR_SUB => {
                chain_alu!(s, op1, rr, AluOp::Xor);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_SLTI_ADD => {
                chain_alu!(s, op1, ri, AluOp::Slt);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ADD_ADDI => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_alu!(s, op2, ri, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_MULI_ADD => {
                chain_alu!(s, op1, ri, AluOp::Mul);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ANDI_SLLI => {
                chain_alu!(s, op1, ri, AluOp::And);
                chain_alu!(s, op2, ri, AluOp::Sll);
                exit_seq!(s, s.at2);
            }
            CH_ADD_LW => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_ld2!(s, MemWidth::Word, false);
                exit_seq!(s, s.at2);
            }
            CH_ADDI_LW => {
                chain_alu!(s, op1, ri, AluOp::Add);
                chain_ld2!(s, MemWidth::Word, false);
                exit_seq!(s, s.at2);
            }
            CH_ADD_LBU => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_ld2!(s, MemWidth::Byte, false);
                exit_seq!(s, s.at2);
            }
            CH_LW_ADD => {
                chain_ld1!(s, MemWidth::Word, false);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_LW_ADDI => {
                chain_ld1!(s, MemWidth::Word, false);
                chain_alu!(s, op2, ri, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_LBU_SUB => {
                chain_ld1!(s, MemWidth::Byte, false);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_LW_SLLI => {
                chain_ld1!(s, MemWidth::Word, false);
                chain_alu!(s, op2, ri, AluOp::Sll);
                exit_seq!(s, s.at2);
            }
            CH_SLTI_BNE => {
                chain_alu!(s, op1, ri, AluOp::Slt);
                chain_br2!(s, |x, y| x != y);
            }
            CH_LW_BEQ => {
                chain_ld1!(s, MemWidth::Word, false);
                chain_br2!(s, |x, y| x == y);
            }
            CH_SUB_ADD => {
                chain_alu!(s, op1, rr, AluOp::Sub);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ADD_SUB => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_SUB_SUB => {
                chain_alu!(s, op1, rr, AluOp::Sub);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_LW_LW => {
                chain_ld1!(s, MemWidth::Word, false);
                chain_ld2!(s, MemWidth::Word, false);
                exit_seq!(s, s.at2);
            }
            CH_SW_SW => {
                chain_st1!(s, MemWidth::Word);
                chain_st2!(s, MemWidth::Word);
                exit_seq!(s, s.at2);
            }
            CH_LBU_ADD => {
                chain_ld1!(s, MemWidth::Byte, false);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ADDI_ADD => {
                chain_alu!(s, op1, ri, AluOp::Add);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_ADD_SRAI => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_alu!(s, op2, ri, AluOp::Sra);
                exit_seq!(s, s.at2);
            }
            CH_MUL_ADD => {
                chain_alu!(s, op1, rr, AluOp::Mul);
                chain_alu!(s, op2, rr, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_SUB_MUL => {
                chain_alu!(s, op1, rr, AluOp::Sub);
                chain_alu!(s, op2, rr, AluOp::Mul);
                exit_seq!(s, s.at2);
            }
            CH_SLT_SUB => {
                chain_alu!(s, op1, rr, AluOp::Slt);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_ADDI_SLT => {
                chain_alu!(s, op1, ri, AluOp::Add);
                chain_alu!(s, op2, rr, AluOp::Slt);
                exit_seq!(s, s.at2);
            }
            CH_OR_OR => {
                chain_alu!(s, op1, rr, AluOp::Or);
                chain_alu!(s, op2, rr, AluOp::Or);
                exit_seq!(s, s.at2);
            }
            CH_LW_XOR => {
                chain_ld1!(s, MemWidth::Word, false);
                chain_alu!(s, op2, rr, AluOp::Xor);
                exit_seq!(s, s.at2);
            }
            CH_SRLI_ANDI => {
                chain_alu!(s, op1, ri, AluOp::Srl);
                chain_alu!(s, op2, ri, AluOp::And);
                exit_seq!(s, s.at2);
            }
            CH_MULI_SUB => {
                chain_alu!(s, op1, ri, AluOp::Mul);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_FADD_ADDI => {
                let v1 = fregs[(s.op.b & 31) as usize] + fregs[(s.op.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at as usize, s.op.a, v1);
                chain_alu!(s, op2, ri, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_FMUL_FADD => {
                let v1 = fregs[(s.op.b & 31) as usize] * fregs[(s.op.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = fregs[(s.op2.b & 31) as usize] + fregs[(s.op2.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at2 as usize, s.op2.a, v2);
                exit_seq!(s, s.at2);
            }
            CH_FADD_FADD => {
                let v1 = fregs[(s.op.b & 31) as usize] + fregs[(s.op.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = fregs[(s.op2.b & 31) as usize] + fregs[(s.op2.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at2 as usize, s.op2.a, v2);
                exit_seq!(s, s.at2);
            }
            CH_ADD_FLD => {
                chain_alu!(s, op1, rr, AluOp::Add);
                let addr = regs[(s.op2.b & 31) as usize].wrapping_add(s.op2.imm as u32);
                match load_f64_mem(mem, addr) {
                    Ok(v) => {
                        wfloat(fregs, vp, hook, s.at2 as usize, s.op2.a, v);
                        exit_seq!(s, s.at2);
                    }
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            CH_SUB_LBU => {
                chain_alu!(s, op1, rr, AluOp::Sub);
                chain_ld2!(s, MemWidth::Byte, false);
                exit_seq!(s, s.at2);
            }
            CH_LBU_LBU => {
                chain_ld1!(s, MemWidth::Byte, false);
                chain_ld2!(s, MemWidth::Byte, false);
                exit_seq!(s, s.at2);
            }
            CH_ADD_SLLI => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_alu!(s, op2, ri, AluOp::Sll);
                exit_seq!(s, s.at2);
            }
            CH_ADD_SW => {
                chain_alu!(s, op1, rr, AluOp::Add);
                chain_st2!(s, MemWidth::Word);
                exit_seq!(s, s.at2);
            }
            CH_MULI_SLLI => {
                chain_alu!(s, op1, ri, AluOp::Mul);
                chain_alu!(s, op2, ri, AluOp::Sll);
                exit_seq!(s, s.at2);
            }
            CH_SW_ADDI => {
                chain_st1!(s, MemWidth::Word);
                chain_alu!(s, op2, ri, AluOp::Add);
                exit_seq!(s, s.at2);
            }
            CH_SLT_XORI => {
                chain_alu!(s, op1, rr, AluOp::Slt);
                chain_alu!(s, op2, ri, AluOp::Xor);
                exit_seq!(s, s.at2);
            }
            CH_MUL_SUB => {
                chain_alu!(s, op1, rr, AluOp::Mul);
                chain_alu!(s, op2, rr, AluOp::Sub);
                exit_seq!(s, s.at2);
            }
            CH_ADDI_BLT => {
                chain_alu!(s, op1, ri, AluOp::Add);
                chain_br2!(s, |x: u32, y: u32| (x as i32) < (y as i32));
            }
            CH_MULI_MULI => {
                chain_alu!(s, op1, ri, AluOp::Mul);
                chain_alu!(s, op2, ri, AluOp::Mul);
                exit_seq!(s, s.at2);
            }
            CH_ADDI_MULI => {
                chain_alu!(s, op1, ri, AluOp::Add);
                chain_alu!(s, op2, ri, AluOp::Mul);
                exit_seq!(s, s.at2);
            }
            CH_FLD_FMUL => {
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_f64_mem(mem, addr) {
                    Ok(v) => wfloat(fregs, vp, hook, s.at as usize, s.op.a, v),
                    Err(kind) => {
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v2 = fregs[(s.op2.b & 31) as usize] * fregs[(s.op2.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at2 as usize, s.op2.a, v2);
                exit_seq!(s, s.at2);
            }
            // --- specialized 3-op chains (field layouts documented at
            // `specialize_triple` in decode.rs) ---
            CH3_SLLI_ADD_LW => {
                // op = {a:t, b:s, c:u, imm:sh}; op2 = {a:x, b:y, c:d, imm:off}.
                let v1 = eval_alu(AluOp::Sll, regs[(s.op.b & 31) as usize], s.op.imm as u32);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = eval_alu(
                    AluOp::Add,
                    regs[(s.op2.a & 31) as usize],
                    regs[(s.op2.b & 31) as usize],
                );
                wint(regs, vp, hook, s.at as usize + 1, s.op.c, v2);
                let addr = regs[(s.op.c & 31) as usize].wrapping_add(s.op2.imm as u32);
                match load_mem(mem, addr, MemWidth::Word, false) {
                    Ok(v) => {
                        wint(regs, vp, hook, s.at2 as usize, s.op2.c, v);
                        exit_seq!(s, s.at2);
                    }
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            CH3_ADD_LW_ADD => {
                // op = {a:u, b:x, c:y, imm:off}; op2 = {a:d, b:v, c:q}.
                let v1 = eval_alu(
                    AluOp::Add,
                    regs[(s.op.b & 31) as usize],
                    regs[(s.op.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let addr = regs[(s.op.a & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_mem(mem, addr, MemWidth::Word, false) {
                    Ok(v) => wint(regs, vp, hook, s.at as usize + 1, s.op2.a, v),
                    Err(kind) => {
                        // Crash at the middle instruction: the third
                        // never executed.
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at) + 1,
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v3 = eval_alu(
                    AluOp::Add,
                    regs[(s.op2.a & 31) as usize],
                    regs[(s.op2.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at2 as usize, s.op2.b, v3);
                exit_seq!(s, s.at2);
            }
            CH3_LW_ADD_ADD => {
                // op = {a:d, b:base, c:y, imm:off}; op2 = {a:u, b:v, c:q}.
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_mem(mem, addr, MemWidth::Word, false) {
                    Ok(v) => wint(regs, vp, hook, s.at as usize, s.op.a, v),
                    Err(kind) => {
                        // Crash at the first instruction: neither add
                        // executed.
                        retired -= 2;
                        if PROFILE {
                            exec_counts[s.at as usize + 1] -= 1;
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v2 = eval_alu(
                    AluOp::Add,
                    regs[(s.op.a & 31) as usize],
                    regs[(s.op.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at as usize + 1, s.op2.a, v2);
                let v3 = eval_alu(
                    AluOp::Add,
                    regs[(s.op2.a & 31) as usize],
                    regs[(s.op2.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at2 as usize, s.op2.b, v3);
                exit_seq!(s, s.at2);
            }
            CH3_ANDI_SLLI_ADD => {
                // op = {a:t, b:s, c:u, imm: i1 & 0xFFFF | i2 << 16};
                // op2 = {a:x, b:v, c:p}.
                let i1 = i32::from(s.op.imm as i16);
                let i2 = s.op.imm >> 16;
                let v1 = eval_alu(AluOp::And, regs[(s.op.b & 31) as usize], i1 as u32);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = eval_alu(AluOp::Sll, regs[(s.op2.a & 31) as usize], i2 as u32);
                wint(regs, vp, hook, s.at as usize + 1, s.op.c, v2);
                let v3 = eval_alu(
                    AluOp::Add,
                    regs[(s.op.c & 31) as usize],
                    regs[(s.op2.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at2 as usize, s.op2.b, v3);
                exit_seq!(s, s.at2);
            }
            CH3_SLLI_ADD_FLD => {
                // op = {a:t, b:s, c:u, imm:sh}; op2 = {a:x, b:y, c:fd, imm:off}.
                let v1 = eval_alu(AluOp::Sll, regs[(s.op.b & 31) as usize], s.op.imm as u32);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = eval_alu(
                    AluOp::Add,
                    regs[(s.op2.a & 31) as usize],
                    regs[(s.op2.b & 31) as usize],
                );
                wint(regs, vp, hook, s.at as usize + 1, s.op.c, v2);
                let addr = regs[(s.op.c & 31) as usize].wrapping_add(s.op2.imm as u32);
                match load_f64_mem(mem, addr) {
                    Ok(v) => {
                        wfloat(fregs, vp, hook, s.at2 as usize, s.op2.c, v);
                        exit_seq!(s, s.at2);
                    }
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            CH3_LW_LW_LW => {
                // op = {a:d1, b:b1, c:d2, imm:off1};
                // op2 = {a:b2, b:d3, c:b3, imm: off2 & 0xFFFF | off3 << 16}.
                let off2 = i32::from(s.op2.imm as i16);
                let off3 = s.op2.imm >> 16;
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_mem(mem, addr, MemWidth::Word, false) {
                    Ok(v) => wint(regs, vp, hook, s.at as usize, s.op.a, v),
                    Err(kind) => {
                        retired -= 2;
                        if PROFILE {
                            exec_counts[s.at as usize + 1] -= 1;
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let addr = regs[(s.op2.a & 31) as usize].wrapping_add(off2 as u32);
                match load_mem(mem, addr, MemWidth::Word, false) {
                    Ok(v) => wint(regs, vp, hook, s.at as usize + 1, s.op.c, v),
                    Err(kind) => {
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at) + 1,
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let addr = regs[(s.op2.c & 31) as usize].wrapping_add(off3 as u32);
                match load_mem(mem, addr, MemWidth::Word, false) {
                    Ok(v) => {
                        wint(regs, vp, hook, s.at2 as usize, s.op2.b, v);
                        exit_seq!(s, s.at2);
                    }
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            CH3_SW_SW_SW => {
                // op = {a:rs1, b:b1, c:rs2, imm:off1};
                // op2 = {a:b2, b:rs3, c:b3, imm: off2 & 0xFFFF | off3 << 16}.
                let off2 = i32::from(s.op2.imm as i16);
                let off3 = s.op2.imm >> 16;
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match store_mem(mem, addr, MemWidth::Word, regs[(s.op.a & 31) as usize]) {
                    Ok(()) => {}
                    Err(kind) => {
                        retired -= 2;
                        if PROFILE {
                            exec_counts[s.at as usize + 1] -= 1;
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let addr = regs[(s.op2.a & 31) as usize].wrapping_add(off2 as u32);
                match store_mem(mem, addr, MemWidth::Word, regs[(s.op.c & 31) as usize]) {
                    Ok(()) => {}
                    Err(kind) => {
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at) + 1,
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let addr = regs[(s.op2.c & 31) as usize].wrapping_add(off3 as u32);
                match store_mem(mem, addr, MemWidth::Word, regs[(s.op2.b & 31) as usize]) {
                    Ok(()) => exit_seq!(s, s.at2),
                    Err(kind) => {
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at2),
                            outcome: Outcome::Crashed(kind),
                        }
                    }
                }
            }
            CH3_ADD_FLD_FMUL => {
                // op = {a:u, b:x, c:y, imm:off}; op2 = {a:fd, b:fv, c:fq}.
                let v1 = eval_alu(
                    AluOp::Add,
                    regs[(s.op.b & 31) as usize],
                    regs[(s.op.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let addr = regs[(s.op.a & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_f64_mem(mem, addr) {
                    Ok(v) => wfloat(fregs, vp, hook, s.at as usize + 1, s.op2.a, v),
                    Err(kind) => {
                        retired -= 1;
                        if PROFILE {
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at) + 1,
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v3 = fregs[(s.op2.a & 31) as usize] * fregs[(s.op2.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at2 as usize, s.op2.b, v3);
                exit_seq!(s, s.at2);
            }
            CH3_FLD_FMUL_FADD => {
                // op = {a:fd, b:b, c:t, imm:off}; op2 = {a:u, b:v, c:q}.
                let addr = regs[(s.op.b & 31) as usize].wrapping_add(s.op.imm as u32);
                match load_f64_mem(mem, addr) {
                    Ok(v) => wfloat(fregs, vp, hook, s.at as usize, s.op.a, v),
                    Err(kind) => {
                        retired -= 2;
                        if PROFILE {
                            exec_counts[s.at as usize + 1] -= 1;
                            exec_counts[s.at2 as usize] -= 1;
                        }
                        break 'exec SbExit::Done {
                            executed: retired,
                            final_pc: u64::from(s.at),
                            outcome: Outcome::Crashed(kind),
                        };
                    }
                }
                let v2 = fregs[(s.op.a & 31) as usize] * fregs[(s.op.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at as usize + 1, s.op2.a, v2);
                let v3 = fregs[(s.op2.a & 31) as usize] + fregs[(s.op2.c & 31) as usize];
                wfloat(fregs, vp, hook, s.at2 as usize, s.op2.b, v3);
                exit_seq!(s, s.at2);
            }
            CH3_ADDI_SLT_SUB => {
                // op = {a:a1, b:b1, c:u, imm:imm}; op2 = {a:x, b:v, c:q}.
                let v1 = eval_alu(AluOp::Add, regs[(s.op.b & 31) as usize], s.op.imm as u32);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = eval_alu(
                    AluOp::Slt,
                    regs[(s.op2.a & 31) as usize],
                    regs[(s.op.a & 31) as usize],
                );
                wint(regs, vp, hook, s.at as usize + 1, s.op.c, v2);
                let v3 = eval_alu(
                    AluOp::Sub,
                    regs[(s.op2.c & 31) as usize],
                    regs[(s.op.c & 31) as usize],
                );
                wint(regs, vp, hook, s.at2 as usize, s.op2.b, v3);
                exit_seq!(s, s.at2);
            }
            CH3_ADDI_SLTI_BNE => {
                // op = {a:a1, b:b1, c:a2, imm: i1 & 0xFFFF | i2 << 16};
                // op2 = {a:b2, b:s, c:t, imm:target}.
                let i1 = i32::from(s.op.imm as i16);
                let i2 = s.op.imm >> 16;
                let v1 = eval_alu(AluOp::Add, regs[(s.op.b & 31) as usize], i1 as u32);
                wint(regs, vp, hook, s.at as usize, s.op.a, v1);
                let v2 = eval_alu(AluOp::Slt, regs[(s.op2.a & 31) as usize], i2 as u32);
                wint(regs, vp, hook, s.at as usize + 1, s.op.c, v2);
                if regs[(s.op2.b & 31) as usize] != regs[(s.op2.c & 31) as usize] {
                    exit_jump!(u64::from(s.op2.imm as u32));
                } else {
                    exit_seq!(s, s.at2);
                }
            }
            // Every tag decode.rs can emit has an explicit arm above: a
            // tag landing here means a matcher/executor mismatch, which
            // must fail loudly, not misexecute another chain's layout.
            other => unreachable!("trace element carries unknown chain tag {other}"),
        }
        }
        }};
    }
    loop {
            element!();
            element!();
            element!();
            element!();
        }
    };
    *vp = vpl;
    result
}

/// Executes one micro-op and reports its control-flow effect: one flat
/// match over the folded opcode — every sub-operation (ALU op, width,
/// sign, condition) is baked into its own arm, so the interpreter pays a
/// single dispatch per instruction with no second-level `match`.
#[inline(always)]
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn exec_op<H: WritebackHook>(
    regs: &mut [u32; 32],
    fregs: &mut [f64; 32],
    mem: &mut PagedMem,
    vp: &mut u64,
    hook: &mut H,
    at: usize,
    m: MicroOp,
    fpool: &[f64],
) -> Step {
    /// Masked register read: no bounds-check branch in the hot loop.
    macro_rules! r {
        ($i:expr) => {
            regs[(($i) & 31) as usize]
        };
    }
    /// Masked floating-point register read.
    macro_rules! f {
        ($i:expr) => {
            fregs[(($i) & 31) as usize]
        };
    }
    /// Register-register ALU arm: `eval_alu` with a constant op folds to
    /// the single operation at compile time.
    macro_rules! rr {
        ($op:expr) => {{
            let v = eval_alu($op, r!(m.b), r!(m.c));
            wint(regs, vp, hook, at, m.a, v);
            Step::Next
        }};
    }
    /// Register-immediate ALU arm.
    macro_rules! ri {
        ($op:expr) => {{
            let v = eval_alu($op, r!(m.b), m.imm as u32);
            wint(regs, vp, hook, at, m.a, v);
            Step::Next
        }};
    }
    /// Load arm: constant width/sign fold `load_mem` to one case.
    macro_rules! ld {
        ($width:expr, $signed:expr) => {{
            let addr = r!(m.b).wrapping_add(m.imm as u32);
            match load_mem(mem, addr, $width, $signed) {
                Ok(v) => {
                    wint(regs, vp, hook, at, m.a, v);
                    Step::Next
                }
                Err(kind) => Step::Crash(kind),
            }
        }};
    }
    /// Store arm.
    macro_rules! st {
        ($width:expr) => {{
            let addr = r!(m.b).wrapping_add(m.imm as u32);
            match store_mem(mem, addr, $width, r!(m.a)) {
                Ok(()) => Step::Next,
                Err(kind) => Step::Crash(kind),
            }
        }};
    }
    /// Branch arm: `$cmp` is a two-argument comparison function.
    macro_rules! br {
        ($cmp:expr) => {{
            let cmp = $cmp;
            if cmp(r!(m.a), r!(m.b)) {
                Step::Jump(u64::from(m.imm as u32))
            } else {
                Step::Next
            }
        }};
    }
    /// Two-operand FPU arithmetic arm.
    macro_rules! fpu {
        ($f:expr) => {{
            let f = $f;
            let v: f64 = f(f!(m.b), f!(m.c));
            wfloat(fregs, vp, hook, at, m.a, v);
            Step::Next
        }};
    }
    /// One-operand FPU arm.
    macro_rules! fpu1 {
        ($f:expr) => {{
            let f = $f;
            let v: f64 = f(f!(m.b));
            wfloat(fregs, vp, hook, at, m.a, v);
            Step::Next
        }};
    }
    /// Float-comparison arm writing a 0/1 integer.
    macro_rules! fcmp {
        ($f:expr) => {{
            let f = $f;
            let v = u32::from(f(f!(m.b), f!(m.c)));
            wint(regs, vp, hook, at, m.a, v);
            Step::Next
        }};
    }
    match m.op {
        MOp::AddRR => rr!(AluOp::Add),
        MOp::SubRR => rr!(AluOp::Sub),
        MOp::MulRR => rr!(AluOp::Mul),
        MOp::DivRR => rr!(AluOp::Div),
        MOp::RemRR => rr!(AluOp::Rem),
        MOp::DivuRR => rr!(AluOp::Divu),
        MOp::RemuRR => rr!(AluOp::Remu),
        MOp::AndRR => rr!(AluOp::And),
        MOp::OrRR => rr!(AluOp::Or),
        MOp::XorRR => rr!(AluOp::Xor),
        MOp::NorRR => rr!(AluOp::Nor),
        MOp::SllRR => rr!(AluOp::Sll),
        MOp::SrlRR => rr!(AluOp::Srl),
        MOp::SraRR => rr!(AluOp::Sra),
        MOp::SltRR => rr!(AluOp::Slt),
        MOp::SltuRR => rr!(AluOp::Sltu),
        MOp::AddRI => ri!(AluOp::Add),
        MOp::SubRI => ri!(AluOp::Sub),
        MOp::MulRI => ri!(AluOp::Mul),
        MOp::DivRI => ri!(AluOp::Div),
        MOp::RemRI => ri!(AluOp::Rem),
        MOp::DivuRI => ri!(AluOp::Divu),
        MOp::RemuRI => ri!(AluOp::Remu),
        MOp::AndRI => ri!(AluOp::And),
        MOp::OrRI => ri!(AluOp::Or),
        MOp::XorRI => ri!(AluOp::Xor),
        MOp::NorRI => ri!(AluOp::Nor),
        MOp::SllRI => ri!(AluOp::Sll),
        MOp::SrlRI => ri!(AluOp::Srl),
        MOp::SraRI => ri!(AluOp::Sra),
        MOp::SltRI => ri!(AluOp::Slt),
        MOp::SltuRI => ri!(AluOp::Sltu),
        MOp::Li => {
            wint(regs, vp, hook, at, m.a, m.imm as u32);
            Step::Next
        }
        MOp::Lb => ld!(MemWidth::Byte, true),
        MOp::Lbu => ld!(MemWidth::Byte, false),
        MOp::Lh => ld!(MemWidth::Half, true),
        MOp::Lhu => ld!(MemWidth::Half, false),
        MOp::Lw => ld!(MemWidth::Word, false),
        MOp::Sb => st!(MemWidth::Byte),
        MOp::Sh => st!(MemWidth::Half),
        MOp::Sw => st!(MemWidth::Word),
        MOp::Beq => br!(|x, y| x == y),
        MOp::Bne => br!(|x, y| x != y),
        MOp::Blt => br!(|x: u32, y: u32| (x as i32) < (y as i32)),
        MOp::Bge => br!(|x: u32, y: u32| (x as i32) >= (y as i32)),
        MOp::Bltu => br!(|x, y| x < y),
        MOp::Bgeu => br!(|x, y| x >= y),
        MOp::Jump => Step::Jump(u64::from(m.imm as u32)),
        MOp::Call => {
            wint(regs, vp, hook, at, m.a, (at + 1) as u32);
            Step::Jump(u64::from(m.imm as u32))
        }
        MOp::JumpReg => Step::Jump(u64::from(r!(m.a))),
        MOp::FAdd => fpu!(|x, y| x + y),
        MOp::FSub => fpu!(|x, y| x - y),
        MOp::FMul => fpu!(|x, y| x * y),
        MOp::FDiv => fpu!(|x, y| x / y),
        MOp::FMin => fpu!(f64::min),
        MOp::FMax => fpu!(f64::max),
        MOp::FMov => fpu1!(|x| x),
        MOp::FAbs => fpu1!(f64::abs),
        MOp::FNeg => fpu1!(|x: f64| -x),
        MOp::FSqrt => fpu1!(f64::sqrt),
        MOp::FLi => {
            let v = fpool[m.imm as usize];
            wfloat(fregs, vp, hook, at, m.a, v);
            Step::Next
        }
        MOp::FLd => {
            let addr = r!(m.b).wrapping_add(m.imm as u32);
            match load_f64_mem(mem, addr) {
                Ok(v) => {
                    wfloat(fregs, vp, hook, at, m.a, v);
                    Step::Next
                }
                Err(kind) => Step::Crash(kind),
            }
        }
        MOp::FSd => {
            let addr = r!(m.b).wrapping_add(m.imm as u32);
            let v = f!(m.a);
            match store_f64_mem(mem, addr, v) {
                Ok(()) => Step::Next,
                Err(kind) => Step::Crash(kind),
            }
        }
        MOp::CvtIF => {
            let v = r!(m.b) as i32 as f64;
            wfloat(fregs, vp, hook, at, m.a, v);
            Step::Next
        }
        MOp::CvtFI => {
            let f = f!(m.b);
            let v = if f.is_nan() {
                0
            } else {
                f.clamp(i32::MIN as f64, i32::MAX as f64) as i32 as u32
            };
            wint(regs, vp, hook, at, m.a, v);
            Step::Next
        }
        MOp::FCeq => fcmp!(|x, y| x == y),
        MOp::FClt => fcmp!(|x, y| x < y),
        MOp::FCle => fcmp!(|x, y| x <= y),
        MOp::Halt => Step::Halt,
        MOp::Nop => Step::Next,
    }
}

#[inline]
fn eval_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(0),
        AluOp::Remu => a.checked_rem(b).unwrap_or(0),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Sll => a.wrapping_shl(b),
        AluOp::Srl => a.wrapping_shr(b),
        AluOp::Sra => (a as i32).wrapping_shr(b) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, RA, SP, T0, T1, T2, V0, F0, F1, F2};

    fn run_program(build: impl FnOnce(&mut Asm)) -> (Program, RunResult) {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        (p, r)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(A0, 100);
        a.li(V0, 0);
        a.li(T0, 1);
        a.label("loop");
        a.add(V0, V0, T0);
        a.addi(T0, T0, 1);
        a.ble(T0, A0, "loop");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 5050);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.func("double", false);
        a.add(V0, A0, A0);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.li(A0, 21);
        a.call("double");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 42);
    }

    #[test]
    fn memory_round_trip_all_widths() {
        let mut a = Asm::new();
        let buf = a.data_zero(16);
        a.func("main", false);
        a.la(T0, buf);
        a.li(T1, -2);
        a.sw(T1, 0, T0);
        a.lw(T2, 0, T0);
        a.sh(T1, 4, T0);
        a.lh(V0, 4, T0);
        a.sb(T1, 8, T0);
        a.lb(A0, 8, T0);
        a.lbu(RA, 8, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(T2) as i32, -2);
        assert_eq!(m.reg(V0) as i32, -2);
        assert_eq!(m.reg(A0) as i32, -2);
        assert_eq!(m.reg(RA), 0xfe);
    }

    #[test]
    fn guard_region_access_crashes() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(T0, 0x10); // below DATA_BASE
            a.lw(T1, 0, T0);
            a.halt();
            a.endfunc();
        });
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn misaligned_access_crashes() {
        let (_, r) = run_program(|a| {
            let buf = a.data_zero(8);
            a.func("main", false);
            a.la(T0, buf);
            a.lw(T1, 1, T0);
            a.halt();
            a.endfunc();
        });
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::Misaligned { addr: _, size: 4 })
        ));
    }

    #[test]
    fn wild_jump_crashes() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(T0, 1_000_000);
            a.jr(T0);
            a.halt();
            a.endfunc();
        });
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::PcOutOfRange { .. })
        ));
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut a = Asm::new();
        a.func("main", false);
        a.label("spin");
        a.j("spin");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 10_000,
                ..MachineConfig::default()
            },
        );
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::InfiniteRun);
        assert!(r.outcome.is_catastrophic());
        assert_eq!(r.instructions, 10_000);
    }

    #[test]
    fn division_by_zero_yields_zero_not_crash() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(T0, 7);
            a.li(T1, 0);
            a.div(V0, T0, T1);
            a.rem(A0, T0, T1);
            a.halt();
            a.endfunc();
        });
        assert_eq!(r.outcome, Outcome::Halted);
    }

    #[test]
    fn float_pipeline() {
        let mut a = Asm::new();
        a.func("main", false);
        a.fli(F0, 2.0);
        a.fli(F1, 8.0);
        a.fmul(F2, F0, F1);
        a.fsqrt(F2, F2);
        a.cvt_fi(V0, F2);
        a.fcmp_lt(T0, F0, F1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 4);
        assert_eq!(m.reg(T0), 1);
    }

    #[test]
    fn stack_push_pop() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 77);
        a.addi(SP, SP, -8);
        a.sw(T0, 0, SP);
        a.li(T0, 0);
        a.lw(V0, 0, SP);
        a.addi(SP, SP, 8);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 77);
    }

    #[test]
    fn hook_sees_writebacks_and_can_tamper() {
        struct FlipFirst {
            seen: u64,
        }
        impl WritebackHook for FlipFirst {
            fn int_writeback(&mut self, _i: usize, v: u32) -> u32 {
                self.seen += 1;
                if self.seen == 1 {
                    v ^ 0x8000_0000
                } else {
                    v
                }
            }
        }
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 5);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let mut hook = FlipFirst { seen: 0 };
        let r = m.run(&mut hook);
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(m.reg(T0), 5 | 0x8000_0000);
        assert_eq!(hook.seen, r.value_producing);
    }

    #[test]
    fn profile_counts_executions() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 3);
        a.label("loop");
        a.addi(T0, T0, -1);
        a.bnez(T0, "loop");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                profile: true,
                ..MachineConfig::default()
            },
        );
        m.run_simple();
        assert_eq!(m.exec_counts()[0], 1); // li
        assert_eq!(m.exec_counts()[1], 3); // addi in loop
        assert_eq!(m.exec_counts()[2], 3); // bnez
        assert_eq!(m.exec_counts()[3], 1); // halt
    }

    #[test]
    fn host_io_round_trip() {
        let mut a = Asm::new();
        let buf = a.data_zero(64);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        m.write_bytes(buf, b"hello").unwrap();
        m.write_word(buf + 8, 0xdead_beef).unwrap();
        assert_eq!(m.read_bytes(buf, 5).unwrap(), b"hello");
        assert_eq!(m.read_word(buf + 8).unwrap(), 0xdead_beef);
        assert!(m.read_bytes(0, 4).is_err()); // guard region
        assert!(m.write_bytes(u32::MAX - 2, &[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn writes_to_zero_register_discarded() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(certa_isa::reg::ZERO, 123);
            a.halt();
            a.endfunc();
        });
        assert_eq!(r.outcome, Outcome::Halted);
    }

    #[test]
    fn falling_off_end_crashes() {
        let mut a = Asm::new();
        a.func("main", false);
        a.nop();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::PcOutOfRange { .. })
        ));
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, T0, V0};

    /// 1 + 2 + ... + 100 in a loop: long enough to pause mid-run.
    fn sum_program() -> Program {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(A0, 100);
        a.li(V0, 0);
        a.li(T0, 1);
        a.label("loop");
        a.add(V0, V0, T0);
        a.addi(T0, T0, 1);
        a.ble(T0, A0, "loop");
        a.halt();
        a.endfunc();
        a.assemble().unwrap()
    }

    #[test]
    fn try_new_rejects_oversized_data_segment() {
        let mut a = Asm::new();
        a.data_zero(10_000);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let config = MachineConfig {
            mem_size: 8192,
            ..MachineConfig::default()
        };
        match Machine::try_new(&p, &config) {
            Err(MachineError::DataSegmentTooLarge { required, mem_size }) => {
                assert!(required > 8192);
                assert_eq!(mem_size, 8192);
            }
            other => panic!("expected DataSegmentTooLarge, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "machine configuration rejected")]
    fn new_panics_on_oversized_data_segment() {
        let mut a = Asm::new();
        a.data_zero(10_000);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let _ = Machine::new(
            &p,
            &MachineConfig {
                mem_size: 8192,
                ..MachineConfig::default()
            },
        );
    }

    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let p = sum_program();
        let config = MachineConfig::default();

        // Reference: run straight through.
        let mut reference = Machine::new(&p, &config);
        let ref_result = reference.run_simple();

        // Snapshot mid-run, finish, then restore and finish again.
        let mut m = Machine::new(&p, &config);
        assert_eq!(m.run_until_simple(57), BoundedRun::Paused);
        let snap = m.snapshot();
        assert_eq!(snap.instructions(), 57);
        let first = m.run_simple();
        assert_eq!(first, ref_result);

        m.restore(&snap).unwrap();
        assert!(m.state_eq(&snap));
        assert_eq!(m.instructions(), 57);
        let second = m.run_simple();
        assert_eq!(second, ref_result);
        assert_eq!(m.reg(V0), 5050);
    }

    #[test]
    fn from_snapshot_resumes_identically() {
        let p = sum_program();
        let config = MachineConfig::default();
        let mut golden = Machine::new(&p, &config);
        let golden_result = golden.run_simple();

        let mut m = Machine::new(&p, &config);
        m.run_until_simple(123);
        let snap = m.snapshot();
        let mut resumed = Machine::from_snapshot(&p, &snap, &config).unwrap();
        assert!(resumed.state_eq(&snap));
        assert_eq!(resumed.run_simple(), golden_result);
        assert_eq!(resumed.reg(V0), 5050);
    }

    #[test]
    fn from_snapshot_rejects_mem_size_mismatch() {
        let p = sum_program();
        let snap = Machine::new(&p, &MachineConfig::default()).snapshot();
        let smaller = MachineConfig {
            mem_size: 1 << 20,
            ..MachineConfig::default()
        };
        assert!(matches!(
            Machine::from_snapshot(&p, &snap, &smaller),
            Err(MachineError::MemSizeMismatch { .. })
        ));
        let mut m = Machine::new(&p, &smaller);
        assert!(matches!(
            m.restore(&snap),
            Err(MachineError::MemSizeMismatch { .. })
        ));
    }

    #[test]
    fn run_until_stops_exactly_at_target() {
        let p = sum_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_until_simple(10), BoundedRun::Paused);
        assert_eq!(m.instructions(), 10);
        // Resuming with a lower or equal target executes nothing.
        assert_eq!(m.run_until_simple(10), BoundedRun::Paused);
        assert_eq!(m.instructions(), 10);
        assert_eq!(m.run_until_simple(5), BoundedRun::Paused);
        assert_eq!(m.instructions(), 10);
        // And a higher target continues from where it stopped.
        assert_eq!(m.run_until_simple(11), BoundedRun::Paused);
        assert_eq!(m.instructions(), 11);
    }

    #[test]
    fn run_until_zero_executes_nothing() {
        let p = sum_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let before = m.snapshot();
        assert_eq!(m.run_until_simple(0), BoundedRun::Paused);
        assert_eq!(m.instructions(), 0);
        assert!(m.state_eq(&before));
    }

    #[test]
    fn run_until_past_halt_finishes() {
        let p = sum_program();
        let mut straight = Machine::new(&p, &MachineConfig::default());
        let expected = straight.run_simple();

        let mut m = Machine::new(&p, &MachineConfig::default());
        match m.run_until_simple(u64::MAX / 4) {
            BoundedRun::Finished(r) => assert_eq!(r, expected),
            BoundedRun::Paused => panic!("must finish before an enormous target"),
        }
        // Running again after halt finishes immediately at the same state:
        // pc sits past the halt, which reports as a crash, exactly like
        // calling run() twice would.
        assert_eq!(m.instructions(), expected.instructions);
    }

    #[test]
    fn run_until_target_exactly_at_halt_boundary() {
        let p = sum_program();
        let mut straight = Machine::new(&p, &MachineConfig::default());
        let expected = straight.run_simple();
        let n = expected.instructions;

        // Target exactly N: the halt is the Nth instruction executed, so
        // the run finishes rather than pausing.
        let mut m = Machine::new(&p, &MachineConfig::default());
        match m.run_until_simple(n) {
            BoundedRun::Finished(r) => assert_eq!(r, expected),
            BoundedRun::Paused => panic!("target N must execute the halt"),
        }

        // Target N-1 pauses with the halt still unexecuted; resuming
        // finishes identically to the straight run.
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_until_simple(n - 1), BoundedRun::Paused);
        assert_eq!(m.instructions(), n - 1);
        assert_eq!(m.run_simple(), expected);
    }

    #[test]
    fn interleaved_bounded_steps_match_straight_run() {
        let p = sum_program();
        let mut straight = Machine::new(&p, &MachineConfig::default());
        let expected = straight.run_simple();

        let mut m = Machine::new(&p, &MachineConfig::default());
        let mut target = 0u64;
        let result = loop {
            target += 37;
            match m.run_until_simple(target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => assert_eq!(m.instructions(), target),
            }
        };
        assert_eq!(result, expected);
        for i in 0..32u8 {
            assert_eq!(m.reg(Reg::new(i)), straight.reg(Reg::new(i)));
        }
    }

    #[test]
    fn watchdog_still_fires_inside_bounded_runs() {
        let mut a = Asm::new();
        a.func("main", false);
        a.label("spin");
        a.j("spin");
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 100,
                ..MachineConfig::default()
            },
        );
        assert_eq!(m.run_until_simple(50), BoundedRun::Paused);
        match m.run_until_simple(1000) {
            BoundedRun::Finished(r) => {
                assert_eq!(r.outcome, Outcome::InfiniteRun);
                assert_eq!(r.instructions, 100);
            }
            BoundedRun::Paused => panic!("watchdog must fire before the bound"),
        }
    }

    #[test]
    fn state_eq_detects_every_component() {
        let p = sum_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(20);
        let snap = m.snapshot();
        assert!(m.state_eq(&snap));

        let mut r = Machine::from_snapshot(&p, &snap, &config).unwrap();
        r.set_reg(certa_isa::reg::S0, 0xDEAD);
        assert!(!r.state_eq(&snap));

        let mut r = Machine::from_snapshot(&p, &snap, &config).unwrap();
        r.write_bytes(DATA_BASE + 64, &[1]).unwrap();
        assert!(!r.state_eq(&snap));

        let mut r = Machine::from_snapshot(&p, &snap, &config).unwrap();
        r.run_until_simple(21);
        assert!(!r.state_eq(&snap));
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use certa_asm::{Asm, DATA_BASE};
    use certa_isa::reg::{T0, T1, V0};

    #[test]
    fn watchdog_exact_boundary() {
        // A program needing exactly N instructions halts with budget N but
        // trips the watchdog with budget N-1.
        let mut a = Asm::new();
        a.func("main", false);
        a.nop();
        a.nop();
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut ok = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 3,
                ..MachineConfig::default()
            },
        );
        assert_eq!(ok.run_simple().outcome, Outcome::Halted);
        let mut short = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 2,
                ..MachineConfig::default()
            },
        );
        assert_eq!(short.run_simple().outcome, Outcome::InfiniteRun);
    }

    #[test]
    fn store_at_last_valid_byte_succeeds_and_one_past_crashes() {
        let mem_size = 1 << 20;
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, (mem_size - 1) as i32);
        a.li(T1, 0x5A);
        a.sb(T1, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                mem_size,
                ..MachineConfig::default()
            },
        );
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.read_bytes(mem_size - 1, 1).unwrap(), &[0x5A]);

        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, mem_size as i32);
        a.li(T1, 1);
        a.sb(T1, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                mem_size,
                ..MachineConfig::default()
            },
        );
        assert!(matches!(
            m.run_simple().outcome,
            Outcome::Crashed(CrashKind::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn first_data_byte_is_accessible_and_guard_edge_is_not() {
        let mut a = Asm::new();
        let first = a.data_bytes(&[0xAB]);
        assert_eq!(first, DATA_BASE);
        a.func("main", false);
        a.li(T0, DATA_BASE as i32);
        a.lbu(V0, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 0xAB);

        let mut a = Asm::new();
        a.data_bytes(&[0xAB]);
        a.func("main", false);
        a.li(T0, (DATA_BASE - 1) as i32);
        a.lbu(V0, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert!(matches!(
            m.run_simple().outcome,
            Outcome::Crashed(CrashKind::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_offset_addressing_works() {
        let mut a = Asm::new();
        let buf = a.data_words(&[11, 22, 33]);
        a.func("main", false);
        a.li(T0, (buf + 8) as i32);
        a.lw(V0, -8, T0); // reads buf[0]
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 11);
    }

    #[test]
    fn jr_to_halt_instruction_works() {
        // jumping to any valid instruction index through a register is legal
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 2); // index of halt below
        a.jr(T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(r.instructions, 3);
    }

    #[test]
    fn shift_amounts_wrap_modulo_32() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 1);
        a.li(T1, 33); // 33 % 32 == 1
        a.sll(V0, T0, T1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        m.run_simple();
        assert_eq!(m.reg(V0), 2);
    }

    #[test]
    fn i32_min_div_neg_one_does_not_trap() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, i32::MIN);
        a.li(T1, -1);
        a.div(V0, T0, T1);
        a.rem(T1, T0, T1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0) as i32, i32::MIN); // wrapping division
    }

    #[test]
    fn float_writeback_count_includes_conversions() {
        use certa_isa::reg::F0;
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 7);
        a.cvt_if(F0, T0);
        a.cvt_fi(V0, F0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        // li + cvt.d.w + trunc.w.d all produce values
        assert_eq!(r.value_producing, 3);
        assert_eq!(m.reg(V0), 7);
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, T0, T1, V0};

    /// A kernel mixing every fusion idiom: li+ALU, address compute +
    /// load/store, compare + branch.
    fn mixed_program() -> Program {
        let mut a = Asm::new();
        let buf = a.data_zero(64);
        a.func("main", false);
        a.la(T0, buf);
        a.li(T1, 0);
        a.li(V0, 0);
        a.label("loop");
        a.add(A0, T0, T1);
        a.sb(T1, 0, A0);
        a.lbu(A0, 0, A0);
        a.add(V0, V0, A0);
        a.addi(T1, T1, 1);
        a.slti(A0, T1, 64);
        a.bnez(A0, "loop");
        a.halt();
        a.endfunc();
        a.assemble().unwrap()
    }

    #[test]
    fn decoded_and_reference_pipelines_agree() {
        let p = mixed_program();
        let config = MachineConfig {
            profile: true,
            ..MachineConfig::default()
        };
        let mut fast = Machine::new(&p, &config);
        let mut slow = Machine::new(&p, &config);
        let a = fast.run_simple();
        let b = slow.run_reference(&mut NoHook);
        assert_eq!(a, b);
        assert_eq!(fast.exec_counts(), slow.exec_counts());
        for i in 0..32u8 {
            assert_eq!(fast.reg(Reg::new(i)), slow.reg(Reg::new(i)));
        }
        assert!(fast.decoded_program().fused_pairs() > 0);
    }

    #[test]
    fn hooks_see_identical_sequences_across_pipelines() {
        #[derive(Default)]
        struct Recorder {
            events: Vec<(usize, u32)>,
        }
        impl WritebackHook for Recorder {
            fn int_writeback(&mut self, i: usize, v: u32) -> u32 {
                self.events.push((i, v));
                v ^ (self.events.len() as u32 & 1) // tamper every other writeback
            }
        }
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut fast = Machine::new(&p, &config);
        let mut slow = Machine::new(&p, &config);
        let mut fast_hook = Recorder::default();
        let mut slow_hook = Recorder::default();
        let a = fast.run(&mut fast_hook);
        let b = slow.run_reference(&mut slow_hook);
        assert_eq!(a, b);
        assert_eq!(fast_hook.events, slow_hook.events);
    }

    #[test]
    fn bounded_pauses_are_exact_across_fused_pairs() {
        let p = mixed_program();
        let mut reference = Machine::new(&p, &MachineConfig::default());
        let expected = reference.run_reference(&mut NoHook);
        // Pause at every possible boundary: fused pairs must split cleanly.
        for target in 0..expected.instructions {
            let mut m = Machine::new(&p, &MachineConfig::default());
            assert_eq!(m.run_until_simple(target), BoundedRun::Paused);
            assert_eq!(m.instructions(), target, "pause at {target}");
            assert_eq!(m.run_simple(), expected, "resume from {target}");
        }
    }

    #[test]
    fn watchdog_is_exact_across_fused_pairs() {
        let p = mixed_program();
        let mut reference = Machine::new(&p, &MachineConfig::default());
        let expected = reference.run_simple();
        for budget in 1..expected.instructions {
            let mut m = Machine::new(
                &p,
                &MachineConfig {
                    max_instructions: budget,
                    ..MachineConfig::default()
                },
            );
            let r = m.run_simple();
            assert_eq!(r.outcome, Outcome::InfiniteRun, "budget {budget}");
            assert_eq!(r.instructions, budget, "budget {budget}");
        }
    }

    #[test]
    fn dirty_page_restore_matches_full_restore() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(20);
        let snap = m.snapshot();
        m.restore(&snap).unwrap(); // different id: full path, sets the base
        assert!(m.state_eq(&snap));

        // Run ahead, then restore the same snapshot: dirty-page path.
        m.run_until_simple(120);
        assert!(m.dirty_pages() > 0, "stores must dirty pages");
        m.restore(&snap).unwrap();
        assert!(m.state_eq(&snap), "dirty-page restore must be bit-identical");
        assert_eq!(m.dirty_pages(), 0, "restore clears the dirty set");

        // And the run from the dirty-restored state matches a full restore.
        let mut full = Machine::new(&p, &config);
        full.restore_full(&snap).unwrap();
        assert_eq!(m.run_simple(), full.run_simple());
        for i in 0..32u8 {
            assert_eq!(m.reg(Reg::new(i)), full.reg(Reg::new(i)));
        }
    }

    /// Copy-on-write sharing: a page co-owned by several snapshots must
    /// survive a machine write untouched in every one of them, and the
    /// write must land only in the machine.
    #[test]
    fn write_to_page_shared_by_three_snapshots_preserves_all() {
        let p = mixed_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        m.write_bytes(DATA_BASE + 100, &[0xAA; 16]).unwrap();
        // Three captures with no writes in between: all three snapshots
        // (and the machine) share the same page `Arc`s.
        let s1 = m.snapshot();
        let s2 = m.snapshot();
        let s3 = m.snapshot();
        assert_eq!(s1.diff_pages(&s2).unwrap(), Vec::<u32>::new());
        assert_eq!(s2.diff_pages(&s3).unwrap(), Vec::<u32>::new());

        // Write through the shared page: the machine copies it out.
        m.write_bytes(DATA_BASE + 104, &[0xBB; 4]).unwrap();
        assert_eq!(m.read_bytes(DATA_BASE + 104, 4).unwrap(), &[0xBB; 4]);
        for snap in [&s1, &s2, &s3] {
            let probe = Machine::from_snapshot(&p, snap, &MachineConfig::default()).unwrap();
            assert_eq!(
                probe.read_bytes(DATA_BASE + 100, 16).unwrap(),
                vec![0xAA; 16],
                "snapshot pages must be immune to machine writes"
            );
            // Rolling the writer back onto each snapshot is exact.
            let saved = m.read_bytes(DATA_BASE + 104, 4).unwrap();
            m.restore(snap).unwrap();
            assert!(m.state_eq(snap));
            assert_eq!(m.read_bytes(DATA_BASE + 104, 4).unwrap(), &[0xAA; 4]);
            // Re-apply the write so the next loop iteration sees it again.
            m.write_bytes(DATA_BASE + 104, &saved).unwrap();
        }
    }

    /// Capture accounting: only pages written since the previous capture
    /// are materialized (and counted); an untouched re-capture costs zero.
    #[test]
    fn capture_bytes_counts_only_written_pages() {
        let p = mixed_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let _first = m.snapshot();
        let after_first = m.capture_bytes();
        assert!(
            after_first > 0,
            "the first capture materializes the loaded data pages"
        );

        // No writes: a re-capture shares everything and costs nothing.
        let _second = m.snapshot();
        assert_eq!(m.capture_bytes(), after_first);

        // One byte dirties one page: exactly one page is materialized.
        m.write_bytes(DATA_BASE + 200, &[1]).unwrap();
        let _third = m.snapshot();
        assert_eq!(m.capture_bytes(), after_first + 4096);
    }

    /// Restores are pointer swaps under the hood, but each path must stay
    /// bit-identical when interleaved with writes that force page copies.
    #[test]
    fn cow_restore_paths_stay_exact_under_interleaved_writes() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(40);
        let early = m.snapshot();
        m.run_until_simple(160);
        let late = m.snapshot();
        let delta = early.diff_pages(&late).unwrap();

        // dirty-path restore after COW writes
        m.write_bytes(DATA_BASE + 300, &[7; 64]).unwrap();
        m.restore(&late).unwrap();
        assert!(m.state_eq(&late));
        // diff-path hop back to early, with fresh dirty pages
        m.write_bytes(DATA_BASE + 300, &[9; 64]).unwrap();
        m.restore_with_diff(&early, &delta).unwrap();
        assert!(m.state_eq(&early));
        // full path onto a machine that never saw these snapshots
        let mut other = Machine::new(&p, &config);
        other.restore_full(&late).unwrap();
        assert!(other.state_eq(&late));
        assert_eq!(m.run_simple(), {
            let mut fresh = Machine::from_snapshot(&p, &early, &config).unwrap();
            fresh.run_simple()
        });
    }

    #[test]
    fn restoring_a_different_snapshot_takes_the_full_path() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(10);
        let early = m.snapshot();
        m.run_until_simple(200);
        let late = m.snapshot();

        m.restore(&early).unwrap();
        assert!(m.state_eq(&early));
        // Different snapshot while based on `early`: must fall back to the
        // full copy (pages differing between the two are not dirty).
        m.run_until_simple(40);
        m.restore(&late).unwrap();
        assert!(m.state_eq(&late));
    }

    #[test]
    fn host_writes_are_dirty_tracked() {
        let p = mixed_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let snap = m.snapshot();
        m.restore(&snap).unwrap(); // establish base
        assert_eq!(m.dirty_pages(), 0);
        m.write_bytes(DATA_BASE, &[7; 10_000]).unwrap();
        assert!(m.dirty_pages() >= 3, "10 KB spans at least 3 pages");
        m.restore(&snap).unwrap();
        assert!(m.state_eq(&snap));
    }

    #[test]
    fn from_snapshot_seeds_the_dirty_base() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(50);
        let snap = m.snapshot();
        let mut resumed = Machine::from_snapshot(&p, &snap, &config).unwrap();
        resumed.run_until_simple(300);
        resumed.restore(&snap).unwrap(); // dirty-page path straight away
        assert!(resumed.state_eq(&snap));
        let mut straight = Machine::from_snapshot(&p, &snap, &config).unwrap();
        assert_eq!(resumed.run_simple(), straight.run_simple());
    }

    #[test]
    fn snapshot_size_accounts_for_register_files() {
        let p = mixed_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let snap = m.snapshot();
        // memory image + integer regs (128 B) + float regs (256 B) + ids
        // and counters — not just the memory image.
        assert!(snap.size_bytes() >= snap.mem_len + 128 + 256 + 8);
    }

    #[test]
    fn shared_decoded_program_runs_identically() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let decoded = Arc::new(DecodedProgram::new(&p));
        let mut shared = Machine::try_new_with_decoded(&p, &decoded, &config).unwrap();
        let mut owned = Machine::new(&p, &config);
        assert_eq!(shared.run_simple(), owned.run_simple());
        assert!(Arc::ptr_eq(shared.decoded_program(), &decoded));
    }

    #[test]
    fn diff_pages_is_byte_exact_and_symmetric() {
        let p = mixed_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let a = m.snapshot();
        m.write_bytes(DATA_BASE, &[1; 10]).unwrap();
        m.write_bytes(DATA_BASE + 3 * 4096, &[2; 4097]).unwrap();
        let b = m.snapshot();
        let diff = a.diff_pages(&b).unwrap();
        // DATA_BASE = 0x1000 = page 1; +3 pages and the 4097-byte write
        // spilling into the next.
        assert_eq!(diff, vec![1, 4, 5]);
        assert_eq!(b.diff_pages(&a).unwrap(), diff);
        assert_eq!(a.diff_pages(&a).unwrap(), Vec::<u32>::new());
        assert!(a.page_count() > 20);
    }

    #[test]
    fn restore_with_diff_matches_full_restore() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(15);
        let early = m.snapshot();
        m.run_until_simple(200);
        let late = m.snapshot();
        let delta = early.diff_pages(&late).unwrap();

        // Base the machine on `early`, dirty some pages, then hop to
        // `late` through the precomputed diff.
        m.restore(&early).unwrap();
        assert_eq!(m.base_snapshot_id(), early.id());
        m.run_until_simple(120);
        m.restore_with_diff(&late, &delta).unwrap();
        assert_eq!(m.base_snapshot_id(), late.id());
        assert!(m.state_eq(&late), "diff restore must be bit-identical");

        // And execution from the diff-restored state matches a machine
        // fully restored from `late`.
        let mut full = Machine::from_snapshot(&p, &late, &config).unwrap();
        assert_eq!(m.run_simple(), full.run_simple());
        for i in 0..32u8 {
            assert_eq!(m.reg(Reg::new(i)), full.reg(Reg::new(i)));
        }
    }

    #[test]
    fn restore_with_diff_rejects_size_mismatch_and_ignores_wild_pages() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        let snap = m.snapshot();
        let smaller = Machine::new(
            &p,
            &MachineConfig {
                mem_size: 1 << 20,
                ..config
            },
        )
        .snapshot();
        assert!(matches!(
            m.restore_with_diff(&smaller, &[]),
            Err(MachineError::MemSizeMismatch { .. })
        ));
        // Out-of-range page indices are ignored, not a panic.
        m.restore_with_diff(&snap, &[u32::MAX, 9_999_999]).unwrap();
        assert!(m.state_eq(&snap));
    }

    #[test]
    fn state_eq_fast_paths_agree_with_exact_comparison() {
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until_simple(10);
        let a = m.snapshot();
        m.run_until_simple(40);
        let b = m.snapshot();

        // Same-base dirty-page path: true right after restoring, false
        // after guest stores diverge the state.
        m.restore(&a).unwrap();
        assert!(m.state_eq(&a));
        m.run_until_simple(40);
        // icount now matches `b`: memory must be consulted.
        assert!(m.state_eq(&b), "re-executed run reconverges with b");
        m.write_bytes(DATA_BASE + 8, &[0xEE]).unwrap();
        assert!(!m.state_eq(&b), "dirty-page divergence detected");

        // Cross-snapshot hash path: machine based on `a`, compared
        // against `b` (differing icount/regs are caught early, so pin
        // them equal by comparing the same instruction boundary).
        m.restore(&a).unwrap();
        m.run_until_simple(40);
        assert!(m.state_eq(&b));
        assert!(!m.state_eq(&a), "icount mismatch refutes instantly");
    }

    #[test]
    fn superblock_tier_carries_the_run_and_can_be_disabled() {
        use crate::decode::SuperblockPolicy;
        let p = mixed_program();
        let config = MachineConfig::default();

        let mut sb = Machine::new(&p, &config);
        let r = sb.run_simple();
        assert!(
            sb.superblock_instructions() > r.instructions / 2,
            "superblocks should retire most of this loopy kernel ({} of {})",
            sb.superblock_instructions(),
            r.instructions
        );

        let disabled = Arc::new(DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy::disabled(),
        ));
        let mut fused = Machine::try_new_with_decoded(&p, &disabled, &config).unwrap();
        assert_eq!(fused.run_simple(), r);
        assert_eq!(fused.superblock_instructions(), 0);
    }

    #[test]
    fn superblock_and_fused_tiers_agree_with_profiling_and_hooks() {
        use crate::decode::SuperblockPolicy;
        #[derive(Default)]
        struct Recorder {
            events: Vec<(usize, u32)>,
        }
        impl WritebackHook for Recorder {
            fn int_writeback(&mut self, i: usize, v: u32) -> u32 {
                self.events.push((i, v));
                v ^ (self.events.len() as u32 & 3)
            }
        }
        let p = mixed_program();
        let config = MachineConfig {
            profile: true,
            ..MachineConfig::default()
        };
        let disabled = Arc::new(DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy::disabled(),
        ));
        let mut sb = Machine::new(&p, &config);
        let mut fused = Machine::try_new_with_decoded(&p, &disabled, &config).unwrap();
        let mut sb_hook = Recorder::default();
        let mut fused_hook = Recorder::default();
        let a = sb.run(&mut sb_hook);
        let b = fused.run(&mut fused_hook);
        assert_eq!(a, b);
        assert_eq!(sb_hook.events, fused_hook.events);
        assert_eq!(sb.exec_counts(), fused.exec_counts());
        for i in 0..32u8 {
            assert_eq!(sb.reg(Reg::new(i)), fused.reg(Reg::new(i)));
        }
    }

    #[test]
    fn mid_trace_resume_falls_back_to_fused_dispatch() {
        // Pausing mid-superblock and restoring lands the pc at a
        // non-entry instruction: the dispatch loop must fall back to the
        // per-op tier and still finish bit-identically.
        let p = mixed_program();
        let config = MachineConfig::default();
        let mut reference = Machine::new(&p, &config);
        let expected = reference.run_reference(&mut NoHook);
        for target in [3, 7, 11, 23] {
            let mut m = Machine::new(&p, &config);
            assert_eq!(m.run_until_simple(target), BoundedRun::Paused);
            let snap = m.snapshot();
            let mut resumed = Machine::from_snapshot(&p, &snap, &config).unwrap();
            assert_eq!(resumed.run_simple(), expected, "resume at {target}");
        }
    }
}

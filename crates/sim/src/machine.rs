//! The functional simulator.

use std::fmt;

use certa_asm::DATA_BASE;
use certa_isa::{reg, AluOp, FpuOp, FReg, Instr, MemWidth, Program, Reg};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Total data memory size in bytes. The data segment is loaded at
    /// [`DATA_BASE`]; the stack pointer starts at `mem_size - 16` and grows
    /// down.
    pub mem_size: u32,
    /// Watchdog: a run executing more than this many instructions is
    /// classified as [`Outcome::InfiniteRun`] (the paper's "infinite
    /// execution" failures).
    pub max_instructions: u64,
    /// Whether to record per-instruction execution counts (needed for the
    /// paper's Table 3 dynamic statistics; small overhead).
    pub profile: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_size: 4 << 20,
            max_instructions: 500_000_000,
            profile: false,
        }
    }
}

/// Why a run crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// A load or store touched memory outside `[DATA_BASE, mem_size)`.
    /// Accesses below `DATA_BASE` (the guard region) are the typical result
    /// of corrupted pointer arithmetic.
    MemOutOfBounds {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A load or store address was not a multiple of the access size.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// The program counter left the code array (wild `jr`, corrupted return
    /// address, or falling off the end of the program).
    PcOutOfRange {
        /// The invalid instruction index.
        pc: u64,
    },
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::MemOutOfBounds { addr, size } => {
                write!(f, "out-of-bounds {size}-byte access at {addr:#x}")
            }
            CrashKind::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            CrashKind::PcOutOfRange { pc } => write!(f, "program counter out of range: {pc}"),
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The program executed `halt`.
    Halted,
    /// The program crashed (a catastrophic failure in the paper's terms).
    Crashed(CrashKind),
    /// The watchdog expired (the paper's "infinite execution" failures).
    InfiniteRun,
}

impl Outcome {
    /// Whether this outcome is one of the paper's catastrophic failures
    /// (crash or infinite run).
    #[must_use]
    pub fn is_catastrophic(&self) -> bool {
        !matches!(self, Outcome::Halted)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Halted => write!(f, "halted"),
            Outcome::Crashed(k) => write!(f, "crashed: {k}"),
            Outcome::InfiniteRun => write!(f, "infinite run (watchdog)"),
        }
    }
}

/// Result of a completed [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Dynamic executions of value-producing instructions (the denominator
    /// of the fault model's uniform sampling).
    pub value_producing: u64,
}

/// Result of a bounded [`Machine::run_until`] step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedRun {
    /// The program finished (halted, crashed, or tripped the watchdog)
    /// before reaching the instruction target.
    Finished(RunResult),
    /// The dynamic instruction count reached the target; the machine is
    /// paused at an instruction boundary and can be resumed with another
    /// [`Machine::run_until`] or [`Machine::run`] call.
    Paused,
}

/// Error from the fallible [`Machine`] constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// The program's data segment (plus the 4 KiB slack the loader
    /// reserves above it) does not fit below `mem_size`.
    DataSegmentTooLarge {
        /// Bytes required: `DATA_BASE + data segment + 4096` slack.
        required: usize,
        /// Configured memory size.
        mem_size: u32,
    },
    /// A snapshot's memory image size does not match the machine's
    /// configured memory size.
    MemSizeMismatch {
        /// Memory bytes recorded in the snapshot.
        snapshot: usize,
        /// Memory bytes configured for the machine.
        machine: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::DataSegmentTooLarge { required, mem_size } => write!(
                f,
                "data segment needs {required} bytes but only {mem_size} are configured"
            ),
            MachineError::MemSizeMismatch { snapshot, machine } => write!(
                f,
                "snapshot holds {snapshot} bytes of memory but the machine has {machine}"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// A complete copy of the architectural state of a [`Machine`] at an
/// instruction boundary: register files, program counter, dynamic counters,
/// and the full memory image.
///
/// Snapshots make fault campaigns cheap: the golden run records them at
/// intervals, and every trial then [`Machine::restore`]s the latest snapshot
/// before its first injection point instead of re-executing the prefix.
/// Restoring is a pure `memcpy` — no allocation, no zeroing.
///
/// Per-instruction profiling counts ([`Machine::exec_counts`]) are *not*
/// part of a snapshot: they are a measurement artifact of one specific run,
/// not architectural state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    regs: [u32; 32],
    fregs: [f64; 32],
    pc: u64,
    icount: u64,
    value_producing: u64,
    mem: Vec<u8>,
}

impl Snapshot {
    /// Dynamic instruction count at which this snapshot was taken.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    /// Approximate heap footprint in bytes (dominated by the memory image).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.mem.len() + std::mem::size_of::<Snapshot>()
    }
}

/// Error returned by the host-side memory access helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// Faulting address.
    pub addr: u32,
    /// Requested length.
    pub len: u32,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host access of {} bytes at {:#x} is out of bounds",
            self.len, self.addr
        )
    }
}

impl std::error::Error for MemError {}

/// Hook invoked on every value-producing writeback; the fault injector
/// overrides these to flip bits in instruction results.
///
/// The default implementations pass values through unchanged.
pub trait WritebackHook {
    /// Observes/modifies an integer register writeback.
    #[inline]
    fn int_writeback(&mut self, instr_index: usize, value: u32) -> u32 {
        let _ = instr_index;
        value
    }

    /// Observes/modifies a floating-point register writeback.
    #[inline]
    fn float_writeback(&mut self, instr_index: usize, value: f64) -> f64 {
        let _ = instr_index;
        value
    }
}

/// A hook that does nothing (fault-free execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl WritebackHook for NoHook {}

/// The simulator state: registers, memory, program counter.
#[derive(Debug, Clone)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [u32; 32],
    fregs: [f64; 32],
    mem: Vec<u8>,
    pc: u64,
    icount: u64,
    value_producing: u64,
    exec_counts: Vec<u64>,
    profile: bool,
    max_instructions: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine with the program's data segment loaded at
    /// [`DATA_BASE`], `$sp` at the top of memory and `$gp` at `DATA_BASE`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::DataSegmentTooLarge`] if the data segment
    /// (plus 4 KiB of loader slack) does not fit in `config.mem_size`.
    pub fn try_new(program: &'p Program, config: &MachineConfig) -> Result<Self, MachineError> {
        let lo = DATA_BASE as usize;
        let hi = lo + program.data.len();
        if hi + 4096 >= config.mem_size as usize {
            return Err(MachineError::DataSegmentTooLarge {
                required: hi + 4096,
                mem_size: config.mem_size,
            });
        }
        let mut mem = vec![0u8; config.mem_size as usize];
        mem[lo..hi].copy_from_slice(&program.data);
        let mut regs = [0u32; 32];
        regs[reg::SP.index()] = config.mem_size - 16;
        regs[reg::GP.index()] = DATA_BASE;
        Ok(Machine {
            program,
            regs,
            fregs: [0.0; 32],
            mem,
            pc: program.entry as u64,
            icount: 0,
            value_producing: 0,
            exec_counts: if config.profile {
                vec![0; program.code.len()]
            } else {
                Vec::new()
            },
            profile: config.profile,
            max_instructions: config.max_instructions,
        })
    }

    /// Creates a machine, panicking on configuration errors (convenience
    /// wrapper around [`Machine::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics if the data segment does not fit in `config.mem_size`.
    #[must_use]
    pub fn new(program: &'p Program, config: &MachineConfig) -> Self {
        Self::try_new(program, config)
            .unwrap_or_else(|e| panic!("machine configuration rejected: {e}"))
    }

    /// Creates a machine whose architectural state is copied from
    /// `snapshot`, with watchdog and profiling taken from `config`.
    ///
    /// The `config.mem_size` must match the snapshot's memory image — a
    /// snapshot is a complete state, not a loadable program image.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] if `config.mem_size`
    /// differs from the snapshot's memory size.
    pub fn from_snapshot(
        program: &'p Program,
        snapshot: &Snapshot,
        config: &MachineConfig,
    ) -> Result<Self, MachineError> {
        if snapshot.mem.len() != config.mem_size as usize {
            return Err(MachineError::MemSizeMismatch {
                snapshot: snapshot.mem.len(),
                machine: config.mem_size as usize,
            });
        }
        Ok(Machine {
            program,
            regs: snapshot.regs,
            fregs: snapshot.fregs,
            mem: snapshot.mem.clone(),
            pc: snapshot.pc,
            icount: snapshot.icount,
            value_producing: snapshot.value_producing,
            exec_counts: if config.profile {
                vec![0; program.code.len()]
            } else {
                Vec::new()
            },
            profile: config.profile,
            max_instructions: config.max_instructions,
        })
    }

    /// Captures the complete architectural state at the current instruction
    /// boundary. See [`Snapshot`] for what is (and is not) included.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            regs: self.regs,
            fregs: self.fregs,
            pc: self.pc,
            icount: self.icount,
            value_producing: self.value_producing,
            mem: self.mem.clone(),
        }
    }

    /// Overwrites this machine's architectural state with `snapshot`.
    ///
    /// This is the hot path of checkpointed fault campaigns: a straight
    /// `memcpy` into the existing memory buffer — no allocation, no
    /// zeroing. Watchdog budget and profiling configuration are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MemSizeMismatch`] if the snapshot's memory
    /// image differs in size from this machine's memory.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), MachineError> {
        if snapshot.mem.len() != self.mem.len() {
            return Err(MachineError::MemSizeMismatch {
                snapshot: snapshot.mem.len(),
                machine: self.mem.len(),
            });
        }
        self.regs = snapshot.regs;
        self.fregs = snapshot.fregs;
        self.pc = snapshot.pc;
        self.icount = snapshot.icount;
        self.value_producing = snapshot.value_producing;
        self.mem.copy_from_slice(&snapshot.mem);
        Ok(())
    }

    /// Whether this machine's architectural state is bit-identical to
    /// `snapshot` (floats compared by bit pattern, so NaNs compare
    /// faithfully). Cheap fields are compared first so divergent states
    /// usually return `false` without touching the memory image.
    #[must_use]
    pub fn state_eq(&self, snapshot: &Snapshot) -> bool {
        self.icount == snapshot.icount
            && self.pc == snapshot.pc
            && self.value_producing == snapshot.value_producing
            && self.regs == snapshot.regs
            && self
                .fregs
                .iter()
                .zip(&snapshot.fregs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.mem == snapshot.mem
    }

    /// Current value of an integer register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Current value of a floating-point register.
    #[must_use]
    pub fn freg(&self, r: FReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Sets an integer register (harness use).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    /// Per-instruction execution counts (empty unless
    /// [`MachineConfig::profile`] was set).
    #[must_use]
    pub fn exec_counts(&self) -> &[u64] {
        &self.exec_counts
    }

    // ------------------------------------------------------------------
    // host-side memory access (I/O injection and output capture)
    // ------------------------------------------------------------------

    fn host_range(&self, addr: u32, len: u32) -> Result<std::ops::Range<usize>, MemError> {
        let start = addr as usize;
        let end = start.checked_add(len as usize).ok_or(MemError { addr, len })?;
        if addr < DATA_BASE || end > self.mem.len() {
            return Err(MemError { addr, len });
        }
        Ok(start..end)
    }

    /// Reads guest memory (harness use; bounds-checked, alignment-free).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        Ok(&self.mem[self.host_range(addr, len)?])
    }

    /// Writes guest memory (harness use; bounds-checked, alignment-free).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let range = self.host_range(addr, bytes.len() as u32)?;
        self.mem[range].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a little-endian 32-bit word from guest memory (harness use).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Writes a little-endian 32-bit word to guest memory (harness use).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is outside addressable memory.
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    // ------------------------------------------------------------------
    // guest-side memory access
    // ------------------------------------------------------------------

    #[inline]
    fn check_access(&self, addr: u32, size: u32) -> Result<usize, CrashKind> {
        if !addr.is_multiple_of(size) {
            return Err(CrashKind::Misaligned { addr, size });
        }
        let start = addr as usize;
        let end = start + size as usize;
        if addr < DATA_BASE || end > self.mem.len() {
            return Err(CrashKind::MemOutOfBounds { addr, size });
        }
        Ok(start)
    }

    #[inline]
    fn load(&self, addr: u32, width: MemWidth, signed: bool) -> Result<u32, CrashKind> {
        let size = width.bytes();
        let i = self.check_access(addr, size)?;
        Ok(match (width, signed) {
            (MemWidth::Byte, false) => u32::from(self.mem[i]),
            (MemWidth::Byte, true) => self.mem[i] as i8 as i32 as u32,
            (MemWidth::Half, false) => {
                u32::from(u16::from_le_bytes([self.mem[i], self.mem[i + 1]]))
            }
            (MemWidth::Half, true) => {
                i16::from_le_bytes([self.mem[i], self.mem[i + 1]]) as i32 as u32
            }
            (MemWidth::Word, _) => u32::from_le_bytes(
                self.mem[i..i + 4].try_into().expect("4-byte slice"),
            ),
        })
    }

    #[inline]
    fn store(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), CrashKind> {
        let size = width.bytes();
        let i = self.check_access(addr, size)?;
        match width {
            MemWidth::Byte => self.mem[i] = value as u8,
            MemWidth::Half => self.mem[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => self.mem[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    #[inline]
    fn load_f64(&self, addr: u32) -> Result<f64, CrashKind> {
        if !addr.is_multiple_of(8) {
            return Err(CrashKind::Misaligned { addr, size: 8 });
        }
        let start = addr as usize;
        let end = start + 8;
        if addr < DATA_BASE || end > self.mem.len() {
            return Err(CrashKind::MemOutOfBounds { addr, size: 8 });
        }
        Ok(f64::from_le_bytes(
            self.mem[start..end].try_into().expect("8-byte slice"),
        ))
    }

    #[inline]
    fn store_f64(&mut self, addr: u32, value: f64) -> Result<(), CrashKind> {
        if !addr.is_multiple_of(8) {
            return Err(CrashKind::Misaligned { addr, size: 8 });
        }
        let start = addr as usize;
        let end = start + 8;
        if addr < DATA_BASE || end > self.mem.len() {
            return Err(CrashKind::MemOutOfBounds { addr, size: 8 });
        }
        self.mem[start..end].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    // ------------------------------------------------------------------
    // execution
    // ------------------------------------------------------------------

    #[inline]
    fn write_int<H: WritebackHook>(&mut self, hook: &mut H, instr_index: usize, rd: Reg, v: u32) {
        self.value_producing += 1;
        let v = hook.int_writeback(instr_index, v);
        if !rd.is_zero() {
            self.regs[rd.index()] = v;
        }
    }

    #[inline]
    fn write_float<H: WritebackHook>(
        &mut self,
        hook: &mut H,
        instr_index: usize,
        fd: FReg,
        v: f64,
    ) {
        self.value_producing += 1;
        let v = hook.float_writeback(instr_index, v);
        self.fregs[fd.index()] = v;
    }

    /// Runs to completion with no hook.
    pub fn run_simple(&mut self) -> RunResult {
        self.run(&mut NoHook)
    }

    /// Runs to completion, invoking `hook` on every value-producing
    /// writeback.
    pub fn run<H: WritebackHook>(&mut self, hook: &mut H) -> RunResult {
        match self.run_loop::<H, false>(hook, 0) {
            BoundedRun::Finished(result) => result,
            BoundedRun::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Runs until the dynamic instruction count reaches `target` (absolute,
    /// not relative), stopping cleanly at the instruction boundary, or until
    /// the program finishes — whichever comes first.
    ///
    /// A target at or below the current count pauses immediately without
    /// executing anything; a target beyond the program's natural end returns
    /// [`BoundedRun::Finished`]. The bounded and unbounded paths share one
    /// monomorphized dispatch loop, so `run_until` pays no per-instruction
    /// dispatch penalty over [`Machine::run`].
    pub fn run_until<H: WritebackHook>(&mut self, hook: &mut H, target: u64) -> BoundedRun {
        self.run_loop::<H, true>(hook, target)
    }

    /// The single dispatch loop behind [`Machine::run`] and
    /// [`Machine::run_until`]. `BOUNDED` is a const generic so the target
    /// comparison is compiled out entirely for unbounded runs.
    #[allow(clippy::too_many_lines)]
    fn run_loop<H: WritebackHook, const BOUNDED: bool>(
        &mut self,
        hook: &mut H,
        target: u64,
    ) -> BoundedRun {
        let code = &self.program.code;
        loop {
            if BOUNDED && self.icount >= target {
                return BoundedRun::Paused;
            }
            if self.icount >= self.max_instructions {
                return self.finish(Outcome::InfiniteRun);
            }
            let Some(&instr) = usize::try_from(self.pc).ok().and_then(|pc| code.get(pc)) else {
                return self.finish(Outcome::Crashed(CrashKind::PcOutOfRange { pc: self.pc }));
            };
            let at = self.pc as usize;
            self.icount += 1;
            if self.profile {
                self.exec_counts[at] += 1;
            }
            let mut next = self.pc + 1;
            match instr {
                Instr::Alu { op, rd, rs, rt } => {
                    let a = self.regs[rs.index()];
                    let b = self.regs[rt.index()];
                    let v = eval_alu(op, a, b);
                    self.write_int(hook, at, rd, v);
                }
                Instr::AluImm { op, rd, rs, imm } => {
                    let a = self.regs[rs.index()];
                    let v = eval_alu(op, a, imm as u32);
                    self.write_int(hook, at, rd, v);
                }
                Instr::Li { rd, imm } => self.write_int(hook, at, rd, imm as u32),
                Instr::Load {
                    width,
                    signed,
                    rd,
                    base,
                    off,
                } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    match self.load(addr, width, signed) {
                        Ok(v) => self.write_int(hook, at, rd, v),
                        Err(k) => return self.finish(Outcome::Crashed(k)),
                    }
                }
                Instr::Store {
                    width, rs, base, off,
                } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    let v = self.regs[rs.index()];
                    if let Err(k) = self.store(addr, width, v) {
                        return self.finish(Outcome::Crashed(k));
                    }
                }
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    if cond.eval(self.regs[rs.index()], self.regs[rt.index()]) {
                        next = target as u64;
                    }
                }
                Instr::Jump { target } => next = target as u64,
                Instr::Call { target } => {
                    self.write_int(hook, at, reg::RA, (self.pc + 1) as u32);
                    next = target as u64;
                }
                Instr::JumpReg { rs } => next = u64::from(self.regs[rs.index()]),
                Instr::Fpu { op, fd, fs, ft } => {
                    let a = self.fregs[fs.index()];
                    let b = self.fregs[ft.index()];
                    let v = match op {
                        FpuOp::Add => a + b,
                        FpuOp::Sub => a - b,
                        FpuOp::Mul => a * b,
                        FpuOp::Div => a / b,
                        FpuOp::Min => a.min(b),
                        FpuOp::Max => a.max(b),
                    };
                    self.write_float(hook, at, fd, v);
                }
                Instr::FMov { fd, fs } => {
                    let v = self.fregs[fs.index()];
                    self.write_float(hook, at, fd, v);
                }
                Instr::FAbs { fd, fs } => {
                    let v = self.fregs[fs.index()].abs();
                    self.write_float(hook, at, fd, v);
                }
                Instr::FNeg { fd, fs } => {
                    let v = -self.fregs[fs.index()];
                    self.write_float(hook, at, fd, v);
                }
                Instr::FSqrt { fd, fs } => {
                    let v = self.fregs[fs.index()].sqrt();
                    self.write_float(hook, at, fd, v);
                }
                Instr::FLi { fd, value } => self.write_float(hook, at, fd, value),
                Instr::FLoad { fd, base, off } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    match self.load_f64(addr) {
                        Ok(v) => self.write_float(hook, at, fd, v),
                        Err(k) => return self.finish(Outcome::Crashed(k)),
                    }
                }
                Instr::FStore { fs, base, off } => {
                    let addr = self.regs[base.index()].wrapping_add(off as u32);
                    let v = self.fregs[fs.index()];
                    if let Err(k) = self.store_f64(addr, v) {
                        return self.finish(Outcome::Crashed(k));
                    }
                }
                Instr::CvtIF { fd, rs } => {
                    let v = self.regs[rs.index()] as i32 as f64;
                    self.write_float(hook, at, fd, v);
                }
                Instr::CvtFI { rd, fs } => {
                    let f = self.fregs[fs.index()];
                    let v = if f.is_nan() {
                        0
                    } else {
                        f.clamp(i32::MIN as f64, i32::MAX as f64) as i32 as u32
                    };
                    self.write_int(hook, at, rd, v);
                }
                Instr::FCmp { op, rd, fs, ft } => {
                    let v = u32::from(op.eval(self.fregs[fs.index()], self.fregs[ft.index()]));
                    self.write_int(hook, at, rd, v);
                }
                Instr::Halt => return self.finish(Outcome::Halted),
                Instr::Nop => {}
            }
            self.pc = next;
        }
    }

    fn finish(&self, outcome: Outcome) -> BoundedRun {
        BoundedRun::Finished(RunResult {
            outcome,
            instructions: self.icount,
            value_producing: self.value_producing,
        })
    }
}

#[inline]
fn eval_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(0),
        AluOp::Remu => a.checked_rem(b).unwrap_or(0),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Sll => a.wrapping_shl(b),
        AluOp::Srl => a.wrapping_shr(b),
        AluOp::Sra => (a as i32).wrapping_shr(b) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, RA, SP, T0, T1, T2, V0, F0, F1, F2};

    fn run_program(build: impl FnOnce(&mut Asm)) -> (Program, RunResult) {
        let mut a = Asm::new();
        build(&mut a);
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        (p, r)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(A0, 100);
        a.li(V0, 0);
        a.li(T0, 1);
        a.label("loop");
        a.add(V0, V0, T0);
        a.addi(T0, T0, 1);
        a.ble(T0, A0, "loop");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 5050);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.func("double", false);
        a.add(V0, A0, A0);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.li(A0, 21);
        a.call("double");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 42);
    }

    #[test]
    fn memory_round_trip_all_widths() {
        let mut a = Asm::new();
        let buf = a.data_zero(16);
        a.func("main", false);
        a.la(T0, buf);
        a.li(T1, -2);
        a.sw(T1, 0, T0);
        a.lw(T2, 0, T0);
        a.sh(T1, 4, T0);
        a.lh(V0, 4, T0);
        a.sb(T1, 8, T0);
        a.lb(A0, 8, T0);
        a.lbu(RA, 8, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(T2) as i32, -2);
        assert_eq!(m.reg(V0) as i32, -2);
        assert_eq!(m.reg(A0) as i32, -2);
        assert_eq!(m.reg(RA), 0xfe);
    }

    #[test]
    fn guard_region_access_crashes() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(T0, 0x10); // below DATA_BASE
            a.lw(T1, 0, T0);
            a.halt();
            a.endfunc();
        });
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn misaligned_access_crashes() {
        let (_, r) = run_program(|a| {
            let buf = a.data_zero(8);
            a.func("main", false);
            a.la(T0, buf);
            a.lw(T1, 1, T0);
            a.halt();
            a.endfunc();
        });
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::Misaligned { addr: _, size: 4 })
        ));
    }

    #[test]
    fn wild_jump_crashes() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(T0, 1_000_000);
            a.jr(T0);
            a.halt();
            a.endfunc();
        });
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::PcOutOfRange { .. })
        ));
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut a = Asm::new();
        a.func("main", false);
        a.label("spin");
        a.j("spin");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 10_000,
                ..MachineConfig::default()
            },
        );
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::InfiniteRun);
        assert!(r.outcome.is_catastrophic());
        assert_eq!(r.instructions, 10_000);
    }

    #[test]
    fn division_by_zero_yields_zero_not_crash() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(T0, 7);
            a.li(T1, 0);
            a.div(V0, T0, T1);
            a.rem(A0, T0, T1);
            a.halt();
            a.endfunc();
        });
        assert_eq!(r.outcome, Outcome::Halted);
    }

    #[test]
    fn float_pipeline() {
        let mut a = Asm::new();
        a.func("main", false);
        a.fli(F0, 2.0);
        a.fli(F1, 8.0);
        a.fmul(F2, F0, F1);
        a.fsqrt(F2, F2);
        a.cvt_fi(V0, F2);
        a.fcmp_lt(T0, F0, F1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 4);
        assert_eq!(m.reg(T0), 1);
    }

    #[test]
    fn stack_push_pop() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 77);
        a.addi(SP, SP, -8);
        a.sw(T0, 0, SP);
        a.li(T0, 0);
        a.lw(V0, 0, SP);
        a.addi(SP, SP, 8);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 77);
    }

    #[test]
    fn hook_sees_writebacks_and_can_tamper() {
        struct FlipFirst {
            seen: u64,
        }
        impl WritebackHook for FlipFirst {
            fn int_writeback(&mut self, _i: usize, v: u32) -> u32 {
                self.seen += 1;
                if self.seen == 1 {
                    v ^ 0x8000_0000
                } else {
                    v
                }
            }
        }
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 5);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let mut hook = FlipFirst { seen: 0 };
        let r = m.run(&mut hook);
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(m.reg(T0), 5 | 0x8000_0000);
        assert_eq!(hook.seen, r.value_producing);
    }

    #[test]
    fn profile_counts_executions() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 3);
        a.label("loop");
        a.addi(T0, T0, -1);
        a.bnez(T0, "loop");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                profile: true,
                ..MachineConfig::default()
            },
        );
        m.run_simple();
        assert_eq!(m.exec_counts()[0], 1); // li
        assert_eq!(m.exec_counts()[1], 3); // addi in loop
        assert_eq!(m.exec_counts()[2], 3); // bnez
        assert_eq!(m.exec_counts()[3], 1); // halt
    }

    #[test]
    fn host_io_round_trip() {
        let mut a = Asm::new();
        let buf = a.data_zero(64);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        m.write_bytes(buf, b"hello").unwrap();
        m.write_word(buf + 8, 0xdead_beef).unwrap();
        assert_eq!(m.read_bytes(buf, 5).unwrap(), b"hello");
        assert_eq!(m.read_word(buf + 8).unwrap(), 0xdead_beef);
        assert!(m.read_bytes(0, 4).is_err()); // guard region
        assert!(m.write_bytes(u32::MAX - 2, &[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn writes_to_zero_register_discarded() {
        let (_, r) = run_program(|a| {
            a.func("main", false);
            a.li(certa_isa::reg::ZERO, 123);
            a.halt();
            a.endfunc();
        });
        assert_eq!(r.outcome, Outcome::Halted);
    }

    #[test]
    fn falling_off_end_crashes() {
        let mut a = Asm::new();
        a.func("main", false);
        a.nop();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert!(matches!(
            r.outcome,
            Outcome::Crashed(CrashKind::PcOutOfRange { .. })
        ));
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, T0, V0};

    /// 1 + 2 + ... + 100 in a loop: long enough to pause mid-run.
    fn sum_program() -> Program {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(A0, 100);
        a.li(V0, 0);
        a.li(T0, 1);
        a.label("loop");
        a.add(V0, V0, T0);
        a.addi(T0, T0, 1);
        a.ble(T0, A0, "loop");
        a.halt();
        a.endfunc();
        a.assemble().unwrap()
    }

    #[test]
    fn try_new_rejects_oversized_data_segment() {
        let mut a = Asm::new();
        a.data_zero(10_000);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let config = MachineConfig {
            mem_size: 8192,
            ..MachineConfig::default()
        };
        match Machine::try_new(&p, &config) {
            Err(MachineError::DataSegmentTooLarge { required, mem_size }) => {
                assert!(required > 8192);
                assert_eq!(mem_size, 8192);
            }
            other => panic!("expected DataSegmentTooLarge, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "machine configuration rejected")]
    fn new_panics_on_oversized_data_segment() {
        let mut a = Asm::new();
        a.data_zero(10_000);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let _ = Machine::new(
            &p,
            &MachineConfig {
                mem_size: 8192,
                ..MachineConfig::default()
            },
        );
    }

    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let p = sum_program();
        let config = MachineConfig::default();

        // Reference: run straight through.
        let mut reference = Machine::new(&p, &config);
        let ref_result = reference.run_simple();

        // Snapshot mid-run, finish, then restore and finish again.
        let mut m = Machine::new(&p, &config);
        assert_eq!(m.run_until(&mut NoHook, 57), BoundedRun::Paused);
        let snap = m.snapshot();
        assert_eq!(snap.instructions(), 57);
        let first = m.run_simple();
        assert_eq!(first, ref_result);

        m.restore(&snap).unwrap();
        assert!(m.state_eq(&snap));
        assert_eq!(m.instructions(), 57);
        let second = m.run_simple();
        assert_eq!(second, ref_result);
        assert_eq!(m.reg(V0), 5050);
    }

    #[test]
    fn from_snapshot_resumes_identically() {
        let p = sum_program();
        let config = MachineConfig::default();
        let mut golden = Machine::new(&p, &config);
        let golden_result = golden.run_simple();

        let mut m = Machine::new(&p, &config);
        m.run_until(&mut NoHook, 123);
        let snap = m.snapshot();
        let mut resumed = Machine::from_snapshot(&p, &snap, &config).unwrap();
        assert!(resumed.state_eq(&snap));
        assert_eq!(resumed.run_simple(), golden_result);
        assert_eq!(resumed.reg(V0), 5050);
    }

    #[test]
    fn from_snapshot_rejects_mem_size_mismatch() {
        let p = sum_program();
        let snap = Machine::new(&p, &MachineConfig::default()).snapshot();
        let smaller = MachineConfig {
            mem_size: 1 << 20,
            ..MachineConfig::default()
        };
        assert!(matches!(
            Machine::from_snapshot(&p, &snap, &smaller),
            Err(MachineError::MemSizeMismatch { .. })
        ));
        let mut m = Machine::new(&p, &smaller);
        assert!(matches!(
            m.restore(&snap),
            Err(MachineError::MemSizeMismatch { .. })
        ));
    }

    #[test]
    fn run_until_stops_exactly_at_target() {
        let p = sum_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_until(&mut NoHook, 10), BoundedRun::Paused);
        assert_eq!(m.instructions(), 10);
        // Resuming with a lower or equal target executes nothing.
        assert_eq!(m.run_until(&mut NoHook, 10), BoundedRun::Paused);
        assert_eq!(m.instructions(), 10);
        assert_eq!(m.run_until(&mut NoHook, 5), BoundedRun::Paused);
        assert_eq!(m.instructions(), 10);
        // And a higher target continues from where it stopped.
        assert_eq!(m.run_until(&mut NoHook, 11), BoundedRun::Paused);
        assert_eq!(m.instructions(), 11);
    }

    #[test]
    fn run_until_zero_executes_nothing() {
        let p = sum_program();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let before = m.snapshot();
        assert_eq!(m.run_until(&mut NoHook, 0), BoundedRun::Paused);
        assert_eq!(m.instructions(), 0);
        assert!(m.state_eq(&before));
    }

    #[test]
    fn run_until_past_halt_finishes() {
        let p = sum_program();
        let mut straight = Machine::new(&p, &MachineConfig::default());
        let expected = straight.run_simple();

        let mut m = Machine::new(&p, &MachineConfig::default());
        match m.run_until(&mut NoHook, u64::MAX / 4) {
            BoundedRun::Finished(r) => assert_eq!(r, expected),
            BoundedRun::Paused => panic!("must finish before an enormous target"),
        }
        // Running again after halt finishes immediately at the same state:
        // pc sits past the halt, which reports as a crash, exactly like
        // calling run() twice would.
        assert_eq!(m.instructions(), expected.instructions);
    }

    #[test]
    fn run_until_target_exactly_at_halt_boundary() {
        let p = sum_program();
        let mut straight = Machine::new(&p, &MachineConfig::default());
        let expected = straight.run_simple();
        let n = expected.instructions;

        // Target exactly N: the halt is the Nth instruction executed, so
        // the run finishes rather than pausing.
        let mut m = Machine::new(&p, &MachineConfig::default());
        match m.run_until(&mut NoHook, n) {
            BoundedRun::Finished(r) => assert_eq!(r, expected),
            BoundedRun::Paused => panic!("target N must execute the halt"),
        }

        // Target N-1 pauses with the halt still unexecuted; resuming
        // finishes identically to the straight run.
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_until(&mut NoHook, n - 1), BoundedRun::Paused);
        assert_eq!(m.instructions(), n - 1);
        assert_eq!(m.run(&mut NoHook), expected);
    }

    #[test]
    fn interleaved_bounded_steps_match_straight_run() {
        let p = sum_program();
        let mut straight = Machine::new(&p, &MachineConfig::default());
        let expected = straight.run_simple();

        let mut m = Machine::new(&p, &MachineConfig::default());
        let mut target = 0u64;
        let result = loop {
            target += 37;
            match m.run_until(&mut NoHook, target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => assert_eq!(m.instructions(), target),
            }
        };
        assert_eq!(result, expected);
        for i in 0..32u8 {
            assert_eq!(m.reg(Reg::new(i)), straight.reg(Reg::new(i)));
        }
    }

    #[test]
    fn watchdog_still_fires_inside_bounded_runs() {
        let mut a = Asm::new();
        a.func("main", false);
        a.label("spin");
        a.j("spin");
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 100,
                ..MachineConfig::default()
            },
        );
        assert_eq!(m.run_until(&mut NoHook, 50), BoundedRun::Paused);
        match m.run_until(&mut NoHook, 1000) {
            BoundedRun::Finished(r) => {
                assert_eq!(r.outcome, Outcome::InfiniteRun);
                assert_eq!(r.instructions, 100);
            }
            BoundedRun::Paused => panic!("watchdog must fire before the bound"),
        }
    }

    #[test]
    fn state_eq_detects_every_component() {
        let p = sum_program();
        let config = MachineConfig::default();
        let mut m = Machine::new(&p, &config);
        m.run_until(&mut NoHook, 20);
        let snap = m.snapshot();
        assert!(m.state_eq(&snap));

        let mut r = Machine::from_snapshot(&p, &snap, &config).unwrap();
        r.set_reg(certa_isa::reg::S0, 0xDEAD);
        assert!(!r.state_eq(&snap));

        let mut r = Machine::from_snapshot(&p, &snap, &config).unwrap();
        r.write_bytes(DATA_BASE + 64, &[1]).unwrap();
        assert!(!r.state_eq(&snap));

        let mut r = Machine::from_snapshot(&p, &snap, &config).unwrap();
        r.run_until(&mut NoHook, 21);
        assert!(!r.state_eq(&snap));
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use certa_asm::{Asm, DATA_BASE};
    use certa_isa::reg::{T0, T1, V0};

    #[test]
    fn watchdog_exact_boundary() {
        // A program needing exactly N instructions halts with budget N but
        // trips the watchdog with budget N-1.
        let mut a = Asm::new();
        a.func("main", false);
        a.nop();
        a.nop();
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut ok = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 3,
                ..MachineConfig::default()
            },
        );
        assert_eq!(ok.run_simple().outcome, Outcome::Halted);
        let mut short = Machine::new(
            &p,
            &MachineConfig {
                max_instructions: 2,
                ..MachineConfig::default()
            },
        );
        assert_eq!(short.run_simple().outcome, Outcome::InfiniteRun);
    }

    #[test]
    fn store_at_last_valid_byte_succeeds_and_one_past_crashes() {
        let mem_size = 1 << 20;
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, (mem_size - 1) as i32);
        a.li(T1, 0x5A);
        a.sb(T1, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                mem_size,
                ..MachineConfig::default()
            },
        );
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.read_bytes(mem_size - 1, 1).unwrap(), &[0x5A]);

        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, mem_size as i32);
        a.li(T1, 1);
        a.sb(T1, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            &p,
            &MachineConfig {
                mem_size,
                ..MachineConfig::default()
            },
        );
        assert!(matches!(
            m.run_simple().outcome,
            Outcome::Crashed(CrashKind::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn first_data_byte_is_accessible_and_guard_edge_is_not() {
        let mut a = Asm::new();
        let first = a.data_bytes(&[0xAB]);
        assert_eq!(first, DATA_BASE);
        a.func("main", false);
        a.li(T0, DATA_BASE as i32);
        a.lbu(V0, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 0xAB);

        let mut a = Asm::new();
        a.data_bytes(&[0xAB]);
        a.func("main", false);
        a.li(T0, (DATA_BASE - 1) as i32);
        a.lbu(V0, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert!(matches!(
            m.run_simple().outcome,
            Outcome::Crashed(CrashKind::MemOutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_offset_addressing_works() {
        let mut a = Asm::new();
        let buf = a.data_words(&[11, 22, 33]);
        a.func("main", false);
        a.li(T0, (buf + 8) as i32);
        a.lw(V0, -8, T0); // reads buf[0]
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0), 11);
    }

    #[test]
    fn jr_to_halt_instruction_works() {
        // jumping to any valid instruction index through a register is legal
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 2); // index of halt below
        a.jr(T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        assert_eq!(r.instructions, 3);
    }

    #[test]
    fn shift_amounts_wrap_modulo_32() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 1);
        a.li(T1, 33); // 33 % 32 == 1
        a.sll(V0, T0, T1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        m.run_simple();
        assert_eq!(m.reg(V0), 2);
    }

    #[test]
    fn i32_min_div_neg_one_does_not_trap() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, i32::MIN);
        a.li(T1, -1);
        a.div(V0, T0, T1);
        a.rem(T1, T0, T1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        assert_eq!(m.reg(V0) as i32, i32::MIN); // wrapping division
    }

    #[test]
    fn float_writeback_count_includes_conversions() {
        use certa_isa::reg::F0;
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 7);
        a.cvt_if(F0, T0);
        a.cvt_fi(V0, F0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        let r = m.run_simple();
        // li + cvt.d.w + trunc.w.d all produce values
        assert_eq!(r.value_producing, 3);
        assert_eq!(m.reg(V0), 7);
    }
}

//! # certa-sim
//!
//! Functional simulator for [`certa-isa`](certa_isa) programs — the
//! reproduction's stand-in for the SimpleScalar environment used by the
//! IISWC 2006 paper.
//!
//! The simulator executes the [`certa_isa::Instr`] enum directly (no binary
//! encoding) and provides the three capabilities the paper's methodology
//! needs:
//!
//! 1. **A writeback hook** ([`WritebackHook`]) invoked on every
//!    value-producing instruction, through which the fault injector in
//!    `certa-fault` flips bits in destination-register results.
//! 2. **A crash taxonomy** ([`CrashKind`]): out-of-bounds or misaligned
//!    memory accesses and wild program counters terminate the run — these
//!    are the paper's "crash" catastrophic failures.
//! 3. **A watchdog** ([`MachineConfig::max_instructions`]): runs exceeding
//!    the budget are classified as the paper's "infinite execution"
//!    catastrophic failures.
//!
//! ## Execution pipeline
//!
//! Lowering is a four-stage pipeline — **decode → fuse → superblock →
//! dispatch** — producing three interpreter execution tiers (reference
//! tree-walker, fused micro-op dispatch, superblock traces), plus a
//! fourth, ahead-of-time compiled tier driven by [`Machine::run_aot`]
//! (native Rust code generated per program by the `certa-aot` crate; see
//! the [`aot`] module docs); see `ARCHITECTURE.md` at the workspace root
//! for the full picture.
//!
//! 1. **Decode** ([`DecodedProgram::new`]): the [`certa_isa::Instr`] stream
//!    is lowered once per program into a dense micro-op array — register
//!    operands as raw `u8` indices, branch/jump targets and memory offsets
//!    in a single `i32` immediate, and every sub-operation selector (ALU
//!    op, access width, sign extension, branch condition) folded into the
//!    opcode byte. The array is strictly 1:1 with `Program::code`, so the
//!    architectural `pc`, hook instruction indices, and profiling indices
//!    are untouched by predecoding.
//! 2. **Fuse**: every instruction that can fall through to an existing
//!    successor ([`certa_isa::Instr::can_fall_through`]) is marked as a
//!    pair head; whenever the head actually falls through at runtime, the
//!    dispatch loop retires its successor in the same iteration. This
//!    covers the assembler's common idioms — compare + branch, address
//!    compute + load/store, `li` + ALU — on every loop iteration.
//! 3. **Superblock** ([`SuperblockPolicy`]): a control-flow graph
//!    ([`certa_core::Cfg`]) of the program drives a trace pass — each
//!    profitable basic-block entry gets a straight-line run of micro-ops
//!    following fall-through edges, unconditional jumps, and static
//!    call/return linkage, with conditional branches embedded as side-exit
//!    guards and adjacent ALU/load/branch ops paired into single-dispatch
//!    combo elements. The policy picks entries by static trace length or
//!    seeded with a profiled run's `exec_counts` (the fault campaign seeds
//!    trial machines with the golden run's counts).
//! 4. **Dispatch** ([`Machine::run`], [`Machine::run_until`]): trace
//!    bodies execute with watchdog/pause checks hoisted to trace
//!    boundaries; everything else goes through the flat fused per-op
//!    match. Both are monomorphized over const-generic `PROFILE` and
//!    `BOUNDED` flags so unprofiled, unbounded runs carry zero
//!    per-instruction overhead for profiling or pause targets. A `pc`
//!    that is not a trace entry (e.g. resuming from a snapshot taken
//!    mid-trace) simply dispatches per-op until control reaches one.
//!
//! **Invariants fusion and superblocks must preserve** (enforced by the
//! workspace differential suite in `tests/differential.rs`, including a
//! seeded random-program generator):
//!
//! * every instruction bumps `icount` and per-instruction
//!   [`Machine::exec_counts`] individually — fused pairs, combo elements,
//!   and traces are invisible in every profile;
//! * every intermediate writeback flows through the [`WritebackHook`]
//!   with its own instruction index, in program order, so fault-injection
//!   sites are identical across tiers;
//! * neither a fused pair nor a trace ever straddles a watchdog or
//!   [`Machine::run_until`] boundary — near a boundary execution falls
//!   back to single ops — so bounded runs pause at exactly the requested
//!   instruction count;
//! * crashes report the faulting instruction's `pc` and count it exactly
//!   as the reference interpreter does, wherever inside a trace or pair
//!   they strike.
//!
//! The original tree-walking interpreter survives as
//! [`Machine::run_reference`] / [`Machine::run_until_reference`]: the
//! differential oracle the predecoded pipeline is tested against
//! (identical `Outcome`, output bytes, instruction counts, `exec_counts`,
//! and hook call sequences).
//!
//! ## Checkpointing
//!
//! The simulator supports snapshot/restore of its complete architectural
//! state ([`Snapshot`], [`Machine::snapshot`], [`Machine::restore`],
//! [`Machine::from_snapshot`]) and bounded execution
//! ([`Machine::run_until`]) that stops cleanly at an exact dynamic
//! instruction count. Together these let a fault campaign checkpoint the
//! golden run and fast-forward each trial to the neighborhood of its first
//! injection point instead of re-executing from instruction zero.
//!
//! Restores are page-granular: the machine tracks which 4 KiB pages guest
//! stores and host writes have dirtied since its memory was last
//! synchronized with a snapshot, and re-restoring that same snapshot
//! copies only those pages ([`Machine::restore`]). Restoring a different
//! snapshot falls back to the whole-image copy
//! ([`Machine::restore_full`]); both paths are bit-identical.
//!
//! **Determinism contract:** the simulator is a pure function of
//! (program, initial state, hook behavior). Restoring a snapshot taken at
//! dynamic instruction *N* of some run and continuing — with a hook that
//! behaves like the original hook from *N* onward — produces bit-identical
//! architectural state, outcomes, and instruction counts to re-running from
//! scratch. `run_until` pauses are invisible: splitting a run into any
//! sequence of bounded steps yields exactly the same execution. The fault
//! campaign's checkpoint acceleration relies on this contract and
//! `certa-fault` enforces it with a property test.
//!
//! ## Example
//!
//! ```
//! use certa_asm::Asm;
//! use certa_isa::reg::{T0, V0};
//! use certa_sim::{Machine, MachineConfig, Outcome};
//!
//! let mut a = Asm::new();
//! a.func("main", false);
//! a.li(T0, 21);
//! a.add(V0, T0, T0);
//! a.halt();
//! a.endfunc();
//! let program = a.assemble().unwrap();
//!
//! let mut m = Machine::new(&program, &MachineConfig::default());
//! let result = m.run_simple();
//! assert_eq!(result.outcome, Outcome::Halted);
//! assert_eq!(m.reg(V0), 42);
//! ```

pub mod aot;
mod decode;
mod machine;
mod mem;

pub use aot::{AotCtx, AotExit, AotProgram};
pub use certa_asm::DATA_BASE;
pub use decode::{chain_census, DecodedProgram, SuperblockPolicy};
pub use machine::{
    BoundedRun, CrashKind, Machine, MachineConfig, MachineError, MemError, NoHook, Outcome,
    RunResult, Snapshot, WritebackHook,
};

//! # certa-sim
//!
//! Functional simulator for [`certa-isa`](certa_isa) programs — the
//! reproduction's stand-in for the SimpleScalar environment used by the
//! IISWC 2006 paper.
//!
//! The simulator executes the [`certa_isa::Instr`] enum directly (no binary
//! encoding) and provides the three capabilities the paper's methodology
//! needs:
//!
//! 1. **A writeback hook** ([`WritebackHook`]) invoked on every
//!    value-producing instruction, through which the fault injector in
//!    `certa-fault` flips bits in destination-register results.
//! 2. **A crash taxonomy** ([`CrashKind`]): out-of-bounds or misaligned
//!    memory accesses and wild program counters terminate the run — these
//!    are the paper's "crash" catastrophic failures.
//! 3. **A watchdog** ([`MachineConfig::max_instructions`]): runs exceeding
//!    the budget are classified as the paper's "infinite execution"
//!    catastrophic failures.
//!
//! ## Execution pipeline
//!
//! Execution is a three-stage pipeline: **decode → fuse → dispatch**.
//!
//! 1. **Decode** ([`DecodedProgram::new`]): the [`certa_isa::Instr`] stream
//!    is lowered once per program into a dense micro-op array — register
//!    operands as raw `u8` indices, branch/jump targets and memory offsets
//!    in a single `i32` immediate, and every sub-operation selector (ALU
//!    op, access width, sign extension, branch condition) folded into the
//!    opcode byte. The array is strictly 1:1 with `Program::code`, so the
//!    architectural `pc`, hook instruction indices, and profiling indices
//!    are untouched by predecoding.
//! 2. **Fuse**: every instruction that can fall through to an existing
//!    successor ([`certa_isa::Instr::can_fall_through`]) is marked as a
//!    pair head; whenever the head actually falls through at runtime, the
//!    dispatch loop retires its successor in the same iteration. This
//!    covers the assembler's common idioms — compare + branch, address
//!    compute + load/store, `li` + ALU — on every loop iteration.
//! 3. **Dispatch** ([`Machine::run`], [`Machine::run_until`]): one flat
//!    match over micro-ops, monomorphized over const-generic `PROFILE` and
//!    `BOUNDED` flags so unprofiled, unbounded runs carry zero
//!    per-instruction overhead for profiling or pause targets.
//!
//! **Invariants fusion must preserve** (enforced by the workspace
//! differential suite in `tests/differential.rs`):
//!
//! * both halves of a pair bump `icount` and per-instruction
//!   [`Machine::exec_counts`] individually — fused execution is invisible
//!   in every profile;
//! * every intermediate writeback, including the head's, flows through the
//!   [`WritebackHook`], so fault-injection sites are identical to
//!   unfused execution;
//! * a pair never straddles a watchdog or [`Machine::run_until`] boundary —
//!   near a boundary the head executes alone — so bounded runs pause at
//!   exactly the requested instruction count.
//!
//! The original tree-walking interpreter survives as
//! [`Machine::run_reference`] / [`Machine::run_until_reference`]: the
//! differential oracle the predecoded pipeline is tested against
//! (identical `Outcome`, output bytes, instruction counts, `exec_counts`,
//! and hook call sequences).
//!
//! ## Checkpointing
//!
//! The simulator supports snapshot/restore of its complete architectural
//! state ([`Snapshot`], [`Machine::snapshot`], [`Machine::restore`],
//! [`Machine::from_snapshot`]) and bounded execution
//! ([`Machine::run_until`]) that stops cleanly at an exact dynamic
//! instruction count. Together these let a fault campaign checkpoint the
//! golden run and fast-forward each trial to the neighborhood of its first
//! injection point instead of re-executing from instruction zero.
//!
//! Restores are page-granular: the machine tracks which 4 KiB pages guest
//! stores and host writes have dirtied since its memory was last
//! synchronized with a snapshot, and re-restoring that same snapshot
//! copies only those pages ([`Machine::restore`]). Restoring a different
//! snapshot falls back to the whole-image copy
//! ([`Machine::restore_full`]); both paths are bit-identical.
//!
//! **Determinism contract:** the simulator is a pure function of
//! (program, initial state, hook behavior). Restoring a snapshot taken at
//! dynamic instruction *N* of some run and continuing — with a hook that
//! behaves like the original hook from *N* onward — produces bit-identical
//! architectural state, outcomes, and instruction counts to re-running from
//! scratch. `run_until` pauses are invisible: splitting a run into any
//! sequence of bounded steps yields exactly the same execution. The fault
//! campaign's checkpoint acceleration relies on this contract and
//! `certa-fault` enforces it with a property test.
//!
//! ## Example
//!
//! ```
//! use certa_asm::Asm;
//! use certa_isa::reg::{T0, V0};
//! use certa_sim::{Machine, MachineConfig, Outcome};
//!
//! let mut a = Asm::new();
//! a.func("main", false);
//! a.li(T0, 21);
//! a.add(V0, T0, T0);
//! a.halt();
//! a.endfunc();
//! let program = a.assemble().unwrap();
//!
//! let mut m = Machine::new(&program, &MachineConfig::default());
//! let result = m.run_simple();
//! assert_eq!(result.outcome, Outcome::Halted);
//! assert_eq!(m.reg(V0), 42);
//! ```

mod decode;
mod machine;

pub use decode::DecodedProgram;
pub use machine::{
    BoundedRun, CrashKind, Machine, MachineConfig, MachineError, MemError, NoHook, Outcome,
    RunResult, Snapshot, WritebackHook,
};

//! # certa-sim
//!
//! Functional simulator for [`certa-isa`](certa_isa) programs — the
//! reproduction's stand-in for the SimpleScalar environment used by the
//! IISWC 2006 paper.
//!
//! The simulator executes the [`certa_isa::Instr`] enum directly (no binary
//! encoding) and provides the three capabilities the paper's methodology
//! needs:
//!
//! 1. **A writeback hook** ([`WritebackHook`]) invoked on every
//!    value-producing instruction, through which the fault injector in
//!    `certa-fault` flips bits in destination-register results.
//! 2. **A crash taxonomy** ([`CrashKind`]): out-of-bounds or misaligned
//!    memory accesses and wild program counters terminate the run — these
//!    are the paper's "crash" catastrophic failures.
//! 3. **A watchdog** ([`MachineConfig::max_instructions`]): runs exceeding
//!    the budget are classified as the paper's "infinite execution"
//!    catastrophic failures.
//!
//! ## Example
//!
//! ```
//! use certa_asm::Asm;
//! use certa_isa::reg::{T0, V0};
//! use certa_sim::{Machine, MachineConfig, Outcome};
//!
//! let mut a = Asm::new();
//! a.func("main", false);
//! a.li(T0, 21);
//! a.add(V0, T0, T0);
//! a.halt();
//! a.endfunc();
//! let program = a.assemble().unwrap();
//!
//! let mut m = Machine::new(&program, &MachineConfig::default());
//! let result = m.run_simple();
//! assert_eq!(result.outcome, Outcome::Halted);
//! assert_eq!(m.reg(V0), 42);
//! ```

mod machine;

pub use machine::{
    CrashKind, Machine, MachineConfig, MemError, NoHook, Outcome, RunResult, WritebackHook,
};

//! # certa-sim
//!
//! Functional simulator for [`certa-isa`](certa_isa) programs — the
//! reproduction's stand-in for the SimpleScalar environment used by the
//! IISWC 2006 paper.
//!
//! The simulator executes the [`certa_isa::Instr`] enum directly (no binary
//! encoding) and provides the three capabilities the paper's methodology
//! needs:
//!
//! 1. **A writeback hook** ([`WritebackHook`]) invoked on every
//!    value-producing instruction, through which the fault injector in
//!    `certa-fault` flips bits in destination-register results.
//! 2. **A crash taxonomy** ([`CrashKind`]): out-of-bounds or misaligned
//!    memory accesses and wild program counters terminate the run — these
//!    are the paper's "crash" catastrophic failures.
//! 3. **A watchdog** ([`MachineConfig::max_instructions`]): runs exceeding
//!    the budget are classified as the paper's "infinite execution"
//!    catastrophic failures.
//!
//! ## Checkpointing
//!
//! The simulator supports snapshot/restore of its complete architectural
//! state ([`Snapshot`], [`Machine::snapshot`], [`Machine::restore`],
//! [`Machine::from_snapshot`]) and bounded execution
//! ([`Machine::run_until`]) that stops cleanly at an exact dynamic
//! instruction count. Together these let a fault campaign checkpoint the
//! golden run and fast-forward each trial to the neighborhood of its first
//! injection point instead of re-executing from instruction zero.
//!
//! **Determinism contract:** the simulator is a pure function of
//! (program, initial state, hook behavior). Restoring a snapshot taken at
//! dynamic instruction *N* of some run and continuing — with a hook that
//! behaves like the original hook from *N* onward — produces bit-identical
//! architectural state, outcomes, and instruction counts to re-running from
//! scratch. `run_until` pauses are invisible: splitting a run into any
//! sequence of bounded steps yields exactly the same execution. The fault
//! campaign's checkpoint acceleration relies on this contract and
//! `certa-fault` enforces it with a property test.
//!
//! ## Example
//!
//! ```
//! use certa_asm::Asm;
//! use certa_isa::reg::{T0, V0};
//! use certa_sim::{Machine, MachineConfig, Outcome};
//!
//! let mut a = Asm::new();
//! a.func("main", false);
//! a.li(T0, 21);
//! a.add(V0, T0, T0);
//! a.halt();
//! a.endfunc();
//! let program = a.assemble().unwrap();
//!
//! let mut m = Machine::new(&program, &MachineConfig::default());
//! let result = m.run_simple();
//! assert_eq!(result.outcome, Outcome::Halted);
//! assert_eq!(m.reg(V0), 42);
//! ```

mod machine;

pub use machine::{
    BoundedRun, CrashKind, Machine, MachineConfig, MachineError, MemError, NoHook, Outcome,
    RunResult, Snapshot, WritebackHook,
};

//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace consumes (builds run offline, so crates.io is not
//! available).
//!
//! Implemented surface:
//!
//! * [`RngCore`] / [`Rng::gen_range`] over integer [`core::ops::Range`]s
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64
//! * [`seq::index::sample`] — distinct-index sampling (partial
//!   Fisher-Yates over a sparse map)
//!
//! Streams do **not** match the real `rand` crate bit-for-bit; everything in
//! this workspace that depends on randomness asserts determinism per seed or
//! statistical properties, never exact draws.

use std::ops::Range;

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform value in `[lo, hi)`; `lo < hi` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = below(rng, span);
                ((lo as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `0..span` via 128-bit widening multiply (Lemire's
/// multiply-shift; the bias is < 2^-64 per draw, irrelevant at the
/// population sizes this workspace samples).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u128::from(u64::MAX) {
        // Not needed by this workspace's ranges; fall back to modulo.
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        return wide % span;
    }
    (u128::from(rng.next_u64()) * span) >> 64
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Uniform boolean with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    pub mod index {
        //! Distinct-index sampling.

        use crate::RngCore;
        use std::collections::HashMap;

        /// The distinct indices chosen by [`sample`].
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The chosen indices, in draw order.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of chosen indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were chosen.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher-Yates over a sparse displacement map, so memory
        /// is `O(amount)` even for huge populations).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`, mirroring the real crate.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from a population of {length}"
            );
            let mut displaced: HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + super::super::below(rng, (length - i) as u128) as usize;
                let xi = displaced.get(&i).copied().unwrap_or(i);
                let xj = displaced.remove(&j).unwrap_or(j);
                out.push(xj);
                if j != i {
                    displaced.insert(j, xi);
                }
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..64u8);
            assert!(v < 64);
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let picks: Vec<usize> = super::seq::index::sample(&mut rng, 50, 20).into_vec();
            assert_eq!(picks.len(), 20);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 20, "indices must be distinct");
            assert!(picks.iter().all(|&p| p < 50));
        }
    }

    #[test]
    fn index_sample_full_population() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut picks = super::seq::index::sample(&mut rng, 8, 8).into_vec();
        picks.sort_unstable();
        assert_eq!(picks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rough_uniformity() {
        let mut counts = [0u32; 8];
        for seed in 0..8000 {
            let mut rng = SmallRng::seed_from_u64(seed);
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts skewed: {counts:?}");
        }
    }
}

//! Vendored, dependency-free stand-in for the subset of the `proptest` API
//! this workspace consumes (builds run offline, so crates.io is not
//! available).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro over `fn name(arg in strategy, ...) { body }`
//!   items (doc comments and `#[test]` attributes pass through)
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`]
//! * strategies: integer ranges, [`prelude::any`], tuples,
//!   [`prop::collection::vec`], [`prop::sample::select`]
//!
//! There is **no shrinking**: a failing case reports its seed and values via
//! the panic message instead. Case count defaults to 64 and can be raised
//! with the `PROPTEST_CASES` environment variable.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[inline]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        #[inline]
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Uniform in [0, 1); enough for the fidelity properties.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[inline]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = rng.below(span);
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod prop {
    //! The `prop::` namespace of combinators.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` strategy with length in `len` (half-open).
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling from explicit collections.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly among the given values.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        /// Uniform choice among `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.0.len() as u128) as usize;
                self.0[i].clone()
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test RNG and failure plumbing.

    /// Error carried out of a failing property body.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// xorshift64* generator seeded deterministically from the test name,
    /// so every `cargo test` run replays the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h },
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `0..span` (`span > 0`).
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            if span > u128::from(u64::MAX) {
                let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
                return wide % span;
            }
            (u128::from(self.next_u64()) * span) >> 64
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES` env override,
    /// default 64).
    #[must_use]
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical strategy for "any value of `T`".
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that replays [`test_runner::case_count`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {:?}",
                            stringify!($name), case, cases, e, ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assert_eq failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assert_ne failed: both {:?}", l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assert_ne failed: both {:?}: {}", l, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in -3i32..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn select_picks_members(x in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!(x == 1 || x == 3 || x == 5);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, 10u8..12)) {
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u8..2) {
                prop_assert!(x > 10, "x was {}", x);
            }
        }
        inner();
    }
}

//! Vendored, dependency-free stand-in for the subset of the `criterion` API
//! this workspace consumes (builds run offline, so crates.io is not
//! available).
//!
//! Benchmarks run a short warmup, then `sample_size` timed iterations, and
//! print mean / min wall-clock per iteration (plus throughput when
//! configured). There are no HTML reports, outlier statistics, or baselines;
//! the printed numbers are honest wall-clock means.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation for a group: per-iteration element or byte counts.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives timed iterations of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warmup, also primes caches
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.label, &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: Into<BenchmarkId>, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.label, &b.samples);
        self
    }

    fn report(&self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{label}: no samples recorded", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{label}: mean {} min {} ({} samples)",
            self.name,
            fmt_duration(mean),
            fmt_duration(min),
            samples.len()
        );
        if let Some(t) = self.throughput {
            let per_sec = |count: u64| count as f64 / mean.as_secs_f64();
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!(", {:.2} Melem/s", per_sec(n) / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(", {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

}

/// Bundles benchmark functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` builds bench targets and passes `--test`; a bench
            // invocation passes `--bench`. Skip the heavy work under test.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

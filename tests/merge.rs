//! Property tests for the distributed merge algebra.
//!
//! A distributed campaign sums per-chunk stat deltas as they arrive,
//! from whichever worker delivers first — so every aggregate the
//! coordinator assembles must form a commutative monoid: merging is
//! associative, commutative, and has the `Default` value as identity.
//! These properties are exactly what makes the final tables independent
//! of worker count and chunk arrival order, and this suite pins them for
//! `VerdictCounts`, `OutcomeCounts`, `HarnessStats`, and `RestoreStats`,
//! plus the end product: `ToleranceProfile::to_json` must be
//! byte-identical no matter how the same trials were chunked and
//! reordered on the way in.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use certa::fault::{
    FaultTarget, HarnessStats, OutcomeCounts, Protection, RestoreStats, ToleranceProfile,
};
use certa::fidelity::verdict::VerdictCounts;

/// Per-bucket cap: big enough to exercise carries across chunks, small
/// enough that no sum can overflow.
const CAP: u128 = 1000;

#[derive(Debug, Clone, Copy)]
struct ArbVerdictCounts;

impl Strategy for ArbVerdictCounts {
    type Value = VerdictCounts;

    fn generate(&self, rng: &mut TestRng) -> VerdictCounts {
        VerdictCounts {
            masked: rng.below(CAP) as usize,
            tolerable: rng.below(CAP) as usize,
            silent_corruption: rng.below(CAP) as usize,
            detected_crash: rng.below(CAP) as usize,
            hang: rng.below(CAP) as usize,
            detected_by_check: rng.below(CAP) as usize,
            harness_error: rng.below(CAP) as usize,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ArbOutcomeCounts;

impl Strategy for ArbOutcomeCounts {
    type Value = OutcomeCounts;

    fn generate(&self, rng: &mut TestRng) -> OutcomeCounts {
        OutcomeCounts {
            halted: rng.below(CAP) as usize,
            crashed: rng.below(CAP) as usize,
            infinite: rng.below(CAP) as usize,
            harness_error: rng.below(CAP) as usize,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ArbHarnessStats;

impl Strategy for ArbHarnessStats {
    type Value = HarnessStats;

    fn generate(&self, rng: &mut TestRng) -> HarnessStats {
        HarnessStats {
            panics: rng.below(CAP) as u64,
            timeouts: rng.below(CAP) as u64,
            retries: rng.below(CAP) as u64,
            rebuilds: rng.below(CAP) as u64,
            harness_errors: rng.below(CAP) as u64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ArbRestoreStats;

impl Strategy for ArbRestoreStats {
    type Value = RestoreStats;

    fn generate(&self, rng: &mut TestRng) -> RestoreStats {
        RestoreStats {
            dirty_page: rng.below(CAP) as u64,
            diff_hop: rng.below(CAP) as u64,
            diff_union_cache_hits: rng.below(CAP) as u64,
            full_image: rng.below(CAP) as u64,
        }
    }
}

/// Checks the commutative-monoid laws for one merge implementation.
macro_rules! monoid_laws {
    ($a:expr, $b:expr, $c:expr, $ty:ty) => {{
        let (a, b, c) = ($a, $b, $c);
        // Identity: default ∘ a = a ∘ default = a.
        let mut left = <$ty>::default();
        left.merge(&a);
        let mut right = a;
        right.merge(&<$ty>::default());
        prop_assert_eq!(left, a);
        prop_assert_eq!(right, a);
        // Commutativity: a ∘ b = b ∘ a.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        // Associativity: (a ∘ b) ∘ c = a ∘ (b ∘ c).
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }};
}

proptest! {
    #[test]
    fn verdict_counts_merge_is_a_commutative_monoid(
        a in ArbVerdictCounts,
        b in ArbVerdictCounts,
        c in ArbVerdictCounts,
    ) {
        monoid_laws!(a, b, c, VerdictCounts);
    }

    #[test]
    fn outcome_counts_merge_is_a_commutative_monoid(
        a in ArbOutcomeCounts,
        b in ArbOutcomeCounts,
        c in ArbOutcomeCounts,
    ) {
        monoid_laws!(a, b, c, OutcomeCounts);
    }

    #[test]
    fn harness_stats_merge_is_a_commutative_monoid(
        a in ArbHarnessStats,
        b in ArbHarnessStats,
        c in ArbHarnessStats,
    ) {
        monoid_laws!(a, b, c, HarnessStats);
    }

    #[test]
    fn restore_stats_merge_is_a_commutative_monoid(
        a in ArbRestoreStats,
        b in ArbRestoreStats,
        c in ArbRestoreStats,
    ) {
        monoid_laws!(a, b, c, RestoreStats);
    }

    /// The end product: for a fixed set of per-chunk verdict counts, the
    /// serialized tolerance row is byte-identical no matter how many
    /// workers produced the chunks or in which order they arrived.
    #[test]
    fn tolerance_profile_json_is_arrival_order_invariant(
        chunks in prop::collection::vec(ArbVerdictCounts, 1..12),
        shuffle_seed in any::<u64>(),
    ) {
        let profile_from = |order: &[usize]| {
            let mut counts = VerdictCounts::default();
            for &i in order {
                counts.merge(&chunks[i]);
            }
            ToleranceProfile {
                workload: "susan".to_string(),
                regime: Protection::ControlOnly,
                target: FaultTarget::Registers,
                errors: 2,
                counts,
            }
            .to_json()
        };

        let canonical: Vec<usize> = (0..chunks.len()).collect();
        // A deterministic Fisher–Yates shuffle stands in for "whatever
        // order N racing workers happened to deliver in".
        let mut shuffled = canonical.clone();
        let mut rng = SmallRng::seed_from_u64(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            shuffled.swap(i, j);
        }

        prop_assert_eq!(profile_from(&canonical), profile_from(&shuffled));
    }
}

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use certa::asm::Asm;
use certa::core::{analyze, analyze_with, AnalysisOptions, Tag};
use certa::fault::{run_campaign, CampaignConfig, Protection, Target};
use certa::fidelity::{byte_similarity, psnr, snr_db};
use certa::isa::{reg, AluOp, Instr, Program, Reg, RegRef};
use certa::sim::{Machine, MachineConfig, Outcome};

fn arb_reg() -> impl Strategy<Value = Reg> {
    // avoid $zero so written values are observable, and avoid $sp/$gp so
    // random programs do not wreck the memory conventions
    prop::sample::select(vec![
        reg::V0,
        reg::V1,
        reg::A0,
        reg::A1,
        reg::T0,
        reg::T1,
        reg::T2,
        reg::T3,
        reg::S0,
        reg::S1,
    ])
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

proptest! {
    /// Every ALU instruction executed by the simulator matches the host
    /// semantics implemented independently here.
    #[test]
    fn alu_semantics_match_host(op in arb_alu_op(), a in any::<u32>(), b in any::<u32>()) {
        let mut asm = Asm::new();
        asm.func("main", false);
        asm.li(reg::T0, a as i32);
        asm.li(reg::T1, b as i32);
        asm.emit(Instr::Alu { op, rd: reg::V0, rs: reg::T0, rt: reg::T1 });
        asm.halt();
        asm.endfunc();
        let program = asm.assemble().unwrap();
        let mut m = Machine::new(&program, &MachineConfig::default());
        prop_assert_eq!(m.run_simple().outcome, Outcome::Halted);
        let expected = host_alu(op, a, b);
        prop_assert_eq!(m.reg(reg::V0), expected);
    }

    /// Random straight-line programs always assemble, validate, analyze
    /// without panicking, and produce a tag per instruction; with an
    /// eligible function, instructions after the last control transfer can
    /// only be LowReliability or protected-for-structure reasons.
    #[test]
    fn random_programs_analyze_totally(
        ops in prop::collection::vec((arb_alu_op(), arb_reg(), arb_reg(), arb_reg()), 1..40),
        eligible in any::<bool>(),
    ) {
        let mut asm = Asm::new();
        asm.func("kernel", eligible);
        for (op, rd, rs, rt) in &ops {
            asm.emit(Instr::Alu { op: *op, rd: *rd, rs: *rs, rt: *rt });
        }
        asm.halt();
        asm.endfunc();
        let program = asm.assemble().unwrap();
        prop_assert!(program.validate().is_ok());
        let tags = analyze(&program);
        prop_assert_eq!(tags.len(), program.code.len());
        for (i, tag) in tags.iter() {
            if !eligible && program.code[i].is_value_producing() {
                prop_assert_ne!(tag, Tag::LowReliability);
            }
        }
        // straight-line code with no branches or memory: every
        // value-producing instruction in an eligible function is taggable
        if eligible {
            for (i, tag) in tags.iter().take(ops.len()) {
                if program.code[i].is_value_producing() {
                    prop_assert_eq!(tag, Tag::LowReliability, "instr {}", i);
                }
            }
        }
    }

    /// The analysis is monotone in its options: disabling address
    /// protection can only increase (or keep) the number of taggable
    /// instructions.
    #[test]
    fn disabling_address_protection_is_monotone(
        ops in prop::collection::vec((arb_alu_op(), arb_reg(), arb_reg(), arb_reg()), 1..30),
        offs in prop::collection::vec(0u8..16, 1..5),
    ) {
        let mut asm = Asm::new();
        let buf = asm.data_zero(256);
        asm.func("kernel", true);
        asm.la(reg::S7, buf);
        for (op, rd, rs, rt) in &ops {
            asm.emit(Instr::Alu { op: *op, rd: *rd, rs: *rs, rt: *rt });
        }
        for off in &offs {
            asm.lw(reg::T4, i32::from(*off) * 4, reg::S7);
            asm.sw(reg::T4, i32::from(*off) * 4 + 64, reg::S7);
        }
        asm.halt();
        asm.endfunc();
        let program = asm.assemble().unwrap();
        let strict = analyze(&program).stats().low_reliability;
        let relaxed = analyze_with(&program, &AnalysisOptions {
            protect_addresses: false,
            ..AnalysisOptions::default()
        }).stats().low_reliability;
        prop_assert!(relaxed >= strict);
    }

    /// The simulator is deterministic: identical programs and inputs give
    /// identical register files and instruction counts.
    #[test]
    fn simulator_is_deterministic(
        ops in prop::collection::vec((arb_alu_op(), arb_reg(), arb_reg(), arb_reg()), 1..30)
    ) {
        let mut asm = Asm::new();
        asm.func("main", false);
        for (op, rd, rs, rt) in &ops {
            asm.emit(Instr::Alu { op: *op, rd: *rd, rs: *rs, rt: *rt });
        }
        asm.halt();
        asm.endfunc();
        let program = asm.assemble().unwrap();
        let mut m1 = Machine::new(&program, &MachineConfig::default());
        let mut m2 = Machine::new(&program, &MachineConfig::default());
        let r1 = m1.run_simple();
        let r2 = m2.run_simple();
        prop_assert_eq!(r1, r2);
        for i in 0..32u8 {
            prop_assert_eq!(m1.reg(Reg::new(i)), m2.reg(Reg::new(i)));
        }
    }

    /// PSNR properties: identity is infinite, symmetric in its arguments,
    /// and any difference is finite and non-negative.
    #[test]
    fn psnr_properties(img in prop::collection::vec(any::<u8>(), 16..128), flip in 0usize..16) {
        prop_assert!(psnr(&img, &img).is_infinite());
        let mut other = img.clone();
        let idx = flip % other.len();
        other[idx] = other[idx].wrapping_add(1);
        let p1 = psnr(&img, &other);
        let p2 = psnr(&other, &img);
        prop_assert!((p1 - p2).abs() < 1e-9);
        prop_assert!(p1.is_finite() && p1 >= 0.0);
    }

    /// Byte similarity is within [0,1], reflexive and symmetric.
    #[test]
    fn byte_similarity_properties(a in prop::collection::vec(any::<u8>(), 0..64),
                                  b in prop::collection::vec(any::<u8>(), 0..64)) {
        let s = byte_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(byte_similarity(&a, &a), 1.0);
        prop_assert_eq!(s, byte_similarity(&b, &a));
    }

    /// SNR decreases (weakly) as uniform noise amplitude grows.
    #[test]
    fn snr_monotone_in_noise(base in 500i16..5000, n in 8usize..64) {
        let signal: Vec<i16> = (0..n).map(|i| (f64::from(base) * (i as f64 / 3.0).sin()) as i16).collect();
        let noisy = |amp: i16| -> Vec<i16> {
            signal.iter().enumerate().map(|(i, &s)| {
                s.saturating_add(if i % 2 == 0 { amp } else { -amp })
            }).collect()
        };
        let small = snr_db(&signal, &noisy(2));
        let large = snr_db(&signal, &noisy(50));
        prop_assert!(small >= large);
    }

    /// RegRef dense indexing is a bijection over both register files.
    #[test]
    fn regref_dense_index_bijection(idx in 0usize..64) {
        prop_assert_eq!(RegRef::from_dense_index(idx).dense_index(), idx);
    }

    /// The checkpointing determinism contract: for random seeds, all three
    /// workload sizes, both protection regimes, and varying error counts,
    /// a checkpoint-accelerated campaign produces trial results that are
    /// bit-identical (outcome, output, instruction count, injected count)
    /// to from-scratch execution.
    #[test]
    fn checkpointed_campaigns_equal_scratch(seed in any::<u64>()) {
        const SIZES: [usize; 3] = [64, 256, 1024];
        let size = SIZES[(seed % 3) as usize];
        let errors = (seed >> 2) % 4; // 0..=3, including the no-flip splice path
        let protection = if seed & 2 == 0 { Protection::ControlOnly } else { Protection::None };
        let threads = if seed & 16 == 0 { 1 } else { 2 }; // bit disjoint from `errors`

        let target = TransformTarget::new(size);
        let tags = analyze(&target.program);
        let fast_cfg = CampaignConfig {
            trials: 6,
            errors,
            protection,
            seed,
            threads,
            checkpoint_stride: 64, // force several checkpoints even when small
            ..CampaignConfig::default()
        };
        let slow_cfg = CampaignConfig { checkpointing: false, ..fast_cfg.clone() };
        let fast = run_campaign(&target, &tags, &fast_cfg);
        let slow = run_campaign(&target, &tags, &slow_cfg);

        prop_assert_eq!(&fast.golden.output, &slow.golden.output);
        prop_assert_eq!(fast.golden.instructions, slow.golden.instructions);
        prop_assert_eq!(fast.golden.eligible_population, slow.golden.eligible_population);
        for (i, (a, b)) in fast.trials.iter().zip(&slow.trials).enumerate() {
            prop_assert_eq!(a, b, "trial {} record (size {})", i, size);
        }
    }
}

/// A size-parameterized byte-transform kernel used by the checkpointing
/// property: per element it computes `(b * 3 + 7) & 0xff`, stores it, and
/// accumulates a checksum. Masked flips reconverge with the golden run
/// (exercising the splice path); checksum/store flips diverge to the end
/// (exercising the run-out path); address flips under `Protection::None`
/// crash (exercising early termination).
struct TransformTarget {
    program: Program,
    input_addr: u32,
    output_addr: u32,
    size: usize,
}

impl TransformTarget {
    fn new(size: usize) -> Self {
        let mut a = Asm::new();
        let input_addr = a.data_zero(size);
        let output_addr = a.data_zero(size + 4);
        a.func("transform", true);
        a.la(reg::T0, input_addr);
        a.la(reg::T4, output_addr);
        a.li(reg::T1, 0);
        a.li(reg::T2, 0);
        a.label("loop");
        a.add(reg::T3, reg::T0, reg::T1);
        a.lbu(reg::T3, 0, reg::T3);
        a.muli(reg::T3, reg::T3, 3);
        a.addi(reg::T3, reg::T3, 7);
        a.andi(reg::T3, reg::T3, 255);
        a.add(reg::T2, reg::T2, reg::T3);
        a.add(reg::T5, reg::T4, reg::T1);
        a.sb(reg::T3, 0, reg::T5);
        a.addi(reg::T1, reg::T1, 1);
        a.slti(reg::T6, reg::T1, size as i32);
        a.bnez(reg::T6, "loop");
        a.la(reg::T5, output_addr + size as u32);
        a.sw(reg::T2, 0, reg::T5);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.call("transform");
        a.halt();
        a.endfunc();
        TransformTarget {
            program: a.assemble().unwrap(),
            input_addr,
            output_addr,
            size,
        }
    }
}

impl Target for TransformTarget {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, machine: &mut Machine<'_>) {
        let input: Vec<u8> = (0..self.size).map(|i| (i * 37 + 11) as u8).collect();
        machine.write_bytes(self.input_addr, &input).unwrap();
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        machine
            .read_bytes(self.output_addr, self.size as u32 + 4)
            .ok()
    }
}

fn host_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(0),
        AluOp::Remu => a.checked_rem(b).unwrap_or(0),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Sll => a.wrapping_shl(b),
        AluOp::Srl => a.wrapping_shr(b),
        AluOp::Sra => (a as i32).wrapping_shr(b) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
    }
}

// ---------------------------------------------------------------------
// Error-model algebra
// ---------------------------------------------------------------------

/// Every error model (with a spread of burst lengths for the burst case).
fn arb_error_model() -> impl Strategy<Value = certa::fault::ErrorModel> {
    use certa::fault::ErrorModel;
    prop::sample::select(vec![
        ErrorModel::SingleBitFlip,
        ErrorModel::AdjacentDoubleBitFlip,
        ErrorModel::BurstFlip { len: 1 },
        ErrorModel::BurstFlip { len: 3 },
        ErrorModel::BurstFlip { len: 8 },
        ErrorModel::BurstFlip { len: 31 },
        ErrorModel::BurstFlip { len: 64 },
        ErrorModel::StuckAtZero,
        ErrorModel::StuckAtOne,
    ])
}

proptest! {
    /// The XOR-family models (single, adjacent-double, burst) are
    /// involutions: applying the same fault twice restores the value
    /// exactly, in both the integer and the float domain. (Float values
    /// are compared as bit patterns: a flip can produce a NaN, and the
    /// involution must hold for its payload too.)
    #[test]
    fn xor_family_models_are_involutions(
        model in arb_error_model(),
        value in any::<u32>(),
        fvalue in any::<u64>(),
        bit in any::<u8>(),
    ) {
        use certa::fault::ErrorModel;
        if matches!(model, ErrorModel::StuckAtZero | ErrorModel::StuckAtOne) {
            return Ok(()); // stuck-at is idempotent, not involutive
        }
        prop_assert_eq!(model.apply_u32(model.apply_u32(value, bit), bit), value);
        let f = f64::from_bits(fvalue);
        prop_assert_eq!(
            model.apply_f64(model.apply_f64(f, bit), bit).to_bits(),
            fvalue
        );
    }

    /// The stuck-at models are idempotent: a latched bit stuck at 0 or 1
    /// stays stuck — re-applying the same fault changes nothing.
    #[test]
    fn stuck_at_models_are_idempotent(
        stuck_one in any::<bool>(),
        value in any::<u32>(),
        fvalue in any::<u64>(),
        bit in any::<u8>(),
    ) {
        use certa::fault::ErrorModel;
        let model = if stuck_one { ErrorModel::StuckAtOne } else { ErrorModel::StuckAtZero };
        let once = model.apply_u32(value, bit);
        prop_assert_eq!(model.apply_u32(once, bit), once);
        let fonce = model.apply_f64(f64::from_bits(fvalue), bit).to_bits();
        prop_assert_eq!(model.apply_f64(f64::from_bits(fonce), bit).to_bits(), fonce);
    }

    /// Bit positions reduce modulo the value's width: `bit` and
    /// `bit % 32` (resp. `% 64`) denote the same fault.
    #[test]
    fn bit_positions_reduce_modulo_width(
        model in arb_error_model(),
        value in any::<u32>(),
        fvalue in any::<u64>(),
        bit in any::<u8>(),
    ) {
        prop_assert_eq!(
            model.apply_u32(value, bit),
            model.apply_u32(value, bit % 32)
        );
        let f = f64::from_bits(fvalue);
        prop_assert_eq!(
            model.apply_f64(f, bit).to_bits(),
            model.apply_f64(f, bit % 64).to_bits()
        );
    }

    /// For faults whose mask fits inside the low 32 bits, the integer and
    /// float applications agree: `apply_f64` on a value with zero high
    /// bits flips exactly the bits `apply_u32` flips, and leaves the high
    /// word alone. (Wrapping faults — adjacent at bit 31, bursts crossing
    /// bit 31 — are excluded: the u32 mask wraps within 32 bits where the
    /// u64 mask continues upward, by design.)
    #[test]
    fn integer_and_float_applications_agree_in_the_low_word(
        model in arb_error_model(),
        value in any::<u32>(),
        bit in 0usize..32,
    ) {
        use certa::fault::ErrorModel;
        let bit = bit as u8;
        let fits = match model {
            ErrorModel::SingleBitFlip
            | ErrorModel::StuckAtZero
            | ErrorModel::StuckAtOne => true,
            ErrorModel::AdjacentDoubleBitFlip => bit < 31,
            ErrorModel::BurstFlip { len } => u32::from(bit) + u32::from(len.max(1)) <= 32,
        };
        if !fits {
            return Ok(()); // wrapping masks differ across widths by design
        }
        let wide = model.apply_f64(f64::from_bits(u64::from(value)), bit).to_bits();
        prop_assert_eq!(wide >> 32, 0u64, "high word must stay untouched");
        prop_assert_eq!(wide as u32, model.apply_u32(value, bit));
    }
}

//! Tests that pin the *shape* of the paper's headline results (not the
//! absolute numbers — our substrate is a reduced simulator).

use certa::core::analyze;
use certa::fault::{run_campaign, CampaignConfig, Protection};
use certa::workloads::all_workloads;

/// Paper §5.1/Table 2: "without protecting control data, there is little or
/// no error tolerance" — at the paper's *high* error levels, every
/// unprotected application fails catastrophically in a large fraction of
/// runs while the protected one stays near zero.
#[test]
fn table2_shape_high_error_levels() {
    // (app, high error count from Table 2) — restricted to the faster
    // guests so the suite stays under a minute; the bench binaries sweep
    // all of them.
    let cases = [("gsm", 40u64), ("adpcm", 56), ("blowfish", 20)];
    for (name, errors) in cases {
        let workloads = all_workloads();
        let w = workloads.iter().find(|w| w.name() == name).expect("known app");
        let tags = analyze(w.program());
        let with = run_campaign(
            &**w,
            &tags,
            &CampaignConfig {
                trials: 30,
                errors,
                protection: Protection::ControlOnly,
                ..CampaignConfig::default()
            },
        );
        let without = run_campaign(
            &**w,
            &tags,
            &CampaignConfig {
                trials: 30,
                errors,
                protection: Protection::None,
                ..CampaignConfig::default()
            },
        );
        assert!(
            with.failure_rate() <= 0.1,
            "{name}: protected failures should be near zero, got {:.2}",
            with.failure_rate()
        );
        assert!(
            without.failure_rate() >= 0.3,
            "{name}: unprotected failures should be frequent, got {:.2}",
            without.failure_rate()
        );
    }
}

/// Paper Table 3 shape: MCF is the least taggable application; the media
/// codecs expose a majority (or near-majority) of their dynamic execution
/// as low-reliability instructions.
#[test]
fn table3_shape_mcf_is_the_outlier() {
    let mut fractions = std::collections::BTreeMap::new();
    for w in all_workloads() {
        let tags = analyze(w.program());
        let golden = run_campaign(
            &*w,
            &tags,
            &CampaignConfig {
                trials: 0,
                ..CampaignConfig::default()
            },
        )
        .golden;
        fractions.insert(
            w.name().to_string(),
            tags.dynamic_low_reliability_fraction(&golden.exec_counts),
        );
    }
    let mcf = fractions["mcf"];
    for (app, f) in &fractions {
        assert!(
            mcf <= *f,
            "mcf ({mcf:.3}) must be the minimum, but {app} has {f:.3}"
        );
    }
    assert!(
        fractions["adpcm"] > 0.5,
        "adpcm should be data-dominated, got {:.3}",
        fractions["adpcm"]
    );
    assert!(
        fractions["mpeg"] > 0.5,
        "mpeg should be data-dominated, got {:.3}",
        fractions["mpeg"]
    );
}

/// Paper §5.2 (Figure 3 shape): MCF still finds mostly-correct schedules at
/// low error counts, and incorrect outputs are *noticeably* incorrect
/// (incomplete), never silently claiming a better-than-optimal cost.
#[test]
fn mcf_errors_are_noticeable_not_silent() {
    use certa::fidelity::schedule::{Schedule, ScheduleFidelity};
    use certa::workloads::mcf::{reference_schedule, TRIPS};

    let workloads = all_workloads();
    let w = workloads.iter().find(|w| w.name() == "mcf").expect("mcf");
    let tags = analyze(w.program());
    let result = run_campaign(
        &**w,
        &tags,
        &CampaignConfig {
            trials: 40,
            errors: 2,
            protection: Protection::ControlOnly,
            ..CampaignConfig::default()
        },
    );
    let golden = reference_schedule();
    let mut optimal = 0;
    for out in result.completed_outputs() {
        let faulty = Schedule::decode(out, TRIPS);
        match certa::fidelity::schedule::judge(&golden, faulty.as_ref(), TRIPS as u32) {
            ScheduleFidelity::Optimal => optimal += 1,
            ScheduleFidelity::Suboptimal { .. } | ScheduleFidelity::Incomplete => {}
        }
        // a corrupted schedule must never report a cost below the optimum
        if let Some(s) = faulty {
            if s.cost < golden.cost {
                assert_ne!(
                    certa::fidelity::schedule::judge(&golden, Some(&s), TRIPS as u32),
                    ScheduleFidelity::Optimal,
                    "better-than-optimal cost must be flagged"
                );
            }
        }
    }
    assert!(
        optimal * 2 > result.trials.len(),
        "most low-error MCF runs should still be optimal ({optimal}/{})",
        result.trials.len()
    );
}

/// Paper §5.2 (Susan): with protection the fidelity stays above the 10 dB
/// threshold at moderate error counts.
#[test]
fn susan_survives_moderate_errors_above_threshold() {
    let workloads = all_workloads();
    let w = workloads.iter().find(|w| w.name() == "susan").expect("susan");
    let tags = analyze(w.program());
    let result = run_campaign(
        &**w,
        &tags,
        &CampaignConfig {
            trials: 8,
            errors: 100,
            protection: Protection::ControlOnly,
            ..CampaignConfig::default()
        },
    );
    assert_eq!(result.failure_rate(), 0.0);
    let acceptable = result
        .completed_outputs()
        .filter(|o| w.evaluate(&result.golden.output, Some(o)).acceptable)
        .count();
    assert!(
        acceptable * 4 >= result.trials.len() * 3,
        "most 100-error susan runs should clear 10 dB ({acceptable}/8)"
    );
}

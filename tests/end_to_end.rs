//! End-to-end integration tests spanning the whole stack: assembler →
//! analysis → simulator → fault campaign → fidelity evaluation.

use certa::core::analyze;
use certa::fault::{run_campaign, CampaignConfig, Protection};
use certa::workloads::all_workloads;

/// Campaigns with zero errors must reproduce the golden output exactly for
/// every workload, and evaluate as perfect fidelity.
#[test]
fn zero_error_campaigns_are_lossless_for_every_workload() {
    for w in all_workloads() {
        let tags = analyze(w.program());
        let result = run_campaign(
            &*w,
            &tags,
            &CampaignConfig {
                trials: 2,
                errors: 0,
                protection: Protection::ControlOnly,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(result.failure_rate(), 0.0, "{}", w.name());
        for trial in result.completed() {
            assert_eq!(
                trial.output.as_deref(),
                Some(&result.golden.output[..]),
                "{}: zero-error output must match golden",
                w.name()
            );
            let f = w.evaluate(&result.golden.output, trial.output.as_deref());
            assert!(f.acceptable, "{}", w.name());
            assert!((f.score - 1.0).abs() < 1e-9, "{}", w.name());
        }
    }
}

/// The paper's central claim (Table 2): with control protection the
/// applications survive faults that are catastrophic without it.
#[test]
fn protection_eliminates_catastrophic_failures() {
    for w in all_workloads() {
        // Skip the largest guests to keep the suite quick; the bench
        // harness covers them (susan and mcf are exercised in their own
        // module tests too).
        if matches!(w.name(), "susan" | "mcf" | "art") {
            continue;
        }
        let tags = analyze(w.program());
        let errors = 8;
        let protected = run_campaign(
            &*w,
            &tags,
            &CampaignConfig {
                trials: 25,
                errors,
                protection: Protection::ControlOnly,
                ..CampaignConfig::default()
            },
        );
        let unprotected = run_campaign(
            &*w,
            &tags,
            &CampaignConfig {
                trials: 25,
                errors,
                protection: Protection::None,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(
            protected.failure_rate(),
            0.0,
            "{}: protected run must not fail catastrophically",
            w.name()
        );
        assert!(
            unprotected.failure_rate() > protected.failure_rate(),
            "{}: unprotected ({:.2}) must fail more than protected ({:.2})",
            w.name(),
            unprotected.failure_rate(),
            protected.failure_rate()
        );
    }
}

/// Fidelity must degrade (weakly) as the error count rises.
#[test]
fn fidelity_degrades_with_error_count() {
    let workloads = all_workloads();
    let w = workloads
        .iter()
        .find(|w| w.name() == "blowfish")
        .expect("blowfish");
    let tags = analyze(w.program());
    let mut scores = Vec::new();
    for errors in [1u64, 30] {
        let result = run_campaign(
            &**w,
            &tags,
            &CampaignConfig {
                trials: 20,
                errors,
                protection: Protection::ControlOnly,
                ..CampaignConfig::default()
            },
        );
        let mean: f64 = result
            .completed_outputs()
            .map(|o| w.evaluate(&result.golden.output, Some(o)).score)
            .sum::<f64>()
            / result.trials.len() as f64;
        scores.push(mean);
    }
    assert!(
        scores[0] >= scores[1],
        "1-error fidelity {:.3} should be >= 30-error fidelity {:.3}",
        scores[0],
        scores[1]
    );
}

/// Campaigns are bit-reproducible across identical configurations.
#[test]
fn campaigns_are_deterministic() {
    let workloads = all_workloads();
    let w = workloads.iter().find(|w| w.name() == "adpcm").expect("adpcm");
    let tags = analyze(w.program());
    let config = CampaignConfig {
        trials: 10,
        errors: 3,
        protection: Protection::ControlOnly,
        seed: 1234,
        threads: 3,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&**w, &tags, &config);
    let b = run_campaign(&**w, &tags, &config);
    assert_eq!(a.trials, b.trials);
}

/// The golden run's eligible population must shrink when protection is on
/// (only tagged instructions are injectable) and the tag statistics must be
/// internally consistent.
#[test]
fn eligible_population_and_tag_stats_are_consistent() {
    for w in all_workloads() {
        let tags = analyze(w.program());
        let stats = tags.stats();
        assert_eq!(
            stats.total,
            w.program().code.len(),
            "{}: tag map covers the program",
            w.name()
        );
        assert_eq!(
            stats.total,
            stats.low_reliability + stats.control + stats.ineligible + stats.not_value_producing
                + stats.non_arithmetic,
            "{}: tag categories partition the program",
            w.name()
        );
        let on = run_campaign(
            &*w,
            &tags,
            &CampaignConfig {
                trials: 0,
                protection: Protection::ControlOnly,
                ..CampaignConfig::default()
            },
        );
        let off = run_campaign(
            &*w,
            &tags,
            &CampaignConfig {
                trials: 0,
                protection: Protection::None,
                ..CampaignConfig::default()
            },
        );
        assert!(
            on.golden.eligible_population <= off.golden.eligible_population,
            "{}: protected population must be a subset",
            w.name()
        );
        assert!(
            off.golden.eligible_population <= off.golden.instructions,
            "{}: population bounded by instruction count",
            w.name()
        );
    }
}

/// The extended error models run end-to-end: stuck-at faults never make a
/// protected ADPCM run catastrophic, and campaigns remain deterministic
/// under every model.
#[test]
fn extended_error_models_run_end_to_end() {
    use certa::fault::ErrorModel;
    let workloads = all_workloads();
    let w = workloads.iter().find(|w| w.name() == "adpcm").expect("adpcm");
    let tags = analyze(w.program());
    for model in [
        ErrorModel::SingleBitFlip,
        ErrorModel::AdjacentDoubleBitFlip,
        ErrorModel::StuckAtZero,
        ErrorModel::StuckAtOne,
    ] {
        let config = CampaignConfig {
            trials: 10,
            errors: 4,
            protection: Protection::ControlOnly,
            model,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&**w, &tags, &config);
        assert_eq!(a.failure_rate(), 0.0, "{model:?}");
        let b = run_campaign(&**w, &tags, &config);
        assert_eq!(a.trials, b.trials, "{model:?} must be deterministic");
    }
}

/// Text-assembler round trip across a complete workload program: exporting
/// the Susan guest and re-parsing it yields an identical, equally-analyzable
/// program.
#[test]
fn workload_program_survives_text_round_trip() {
    use certa::asm::{export_program, parse_program};
    let workloads = all_workloads();
    let w = workloads.iter().find(|w| w.name() == "susan").expect("susan");
    let text = export_program(w.program());
    let reparsed = parse_program(&text).expect("exported text re-parses");
    assert_eq!(reparsed.code, w.program().code);
    assert_eq!(reparsed.data, w.program().data);
    let t1 = analyze(w.program());
    let t2 = analyze(&reparsed);
    assert_eq!(t1.stats(), t2.stats());
}

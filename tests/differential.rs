//! Differential suite for the predecoded execution pipeline: for every
//! workload in the study, the micro-op dispatch ([`Machine::run`]) and the
//! reference `Instr` interpreter ([`Machine::run_reference`]) must produce
//! identical `Outcome`, output bytes, instruction counts, register files,
//! and `exec_counts` — including under `run_until` pause/resume, under an
//! injecting `WritebackHook`, and across dirty-page vs full-image restore.

use certa::core::analyze;
use certa::fault::{golden_run, FaultPlan, Injector, Protection};
use certa::isa::Reg;
use certa::sim::{BoundedRun, Machine, MachineConfig, NoHook, Outcome, RunResult};
use certa::workloads::all_workloads;
use certa::workloads::Workload;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn machine_config(w: &dyn Workload, profile: bool) -> MachineConfig {
    MachineConfig {
        mem_size: w.mem_size(),
        profile,
        ..MachineConfig::default()
    }
}

fn fresh_machine<'p>(w: &'p dyn Workload, profile: bool) -> Machine<'p> {
    let mut m = Machine::new(w.program(), &machine_config(w, profile));
    w.prepare(&mut m);
    m
}

fn assert_same_state(fast: &Machine<'_>, slow: &Machine<'_>, label: &str) {
    for i in 0..32u8 {
        assert_eq!(
            fast.reg(Reg::new(i)),
            slow.reg(Reg::new(i)),
            "{label}: register ${i} diverged"
        );
    }
    assert_eq!(
        fast.instructions(),
        slow.instructions(),
        "{label}: icount diverged"
    );
}

/// Golden (fault-free, profiled) runs must agree on everything the
/// campaign observes: result, per-instruction execution counts, registers,
/// and extracted output bytes.
#[test]
fn golden_runs_agree_across_pipelines() {
    for w in all_workloads() {
        let mut fast = fresh_machine(&*w, true);
        let mut slow = fresh_machine(&*w, true);
        let a = fast.run_simple();
        let b = slow.run_reference(&mut NoHook);
        assert_eq!(a, b, "{}: run result", w.name());
        assert_eq!(a.outcome, Outcome::Halted, "{}", w.name());
        assert_eq!(
            fast.exec_counts(),
            slow.exec_counts(),
            "{}: exec_counts",
            w.name()
        );
        assert_same_state(&fast, &slow, w.name());
        assert_eq!(
            w.extract(&fast),
            w.extract(&slow),
            "{}: output bytes",
            w.name()
        );
    }
}

/// Chopping a decoded run into uneven `run_until` slices must be invisible:
/// the final result equals the reference interpreter's straight run, and
/// every pause lands exactly on its target (fused pairs must split).
#[test]
fn bounded_decoded_runs_match_straight_reference_runs() {
    for w in all_workloads() {
        let mut slow = fresh_machine(&*w, false);
        let expected = slow.run_reference(&mut NoHook);

        let mut fast = fresh_machine(&*w, false);
        // Uneven, prime-ish slices to land pauses inside fused pairs.
        let slice = (expected.instructions / 7).max(1) | 1;
        let mut target = 0u64;
        let result = loop {
            target += slice;
            match fast.run_until_simple(target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => {
                    assert_eq!(fast.instructions(), target, "{}: pause point", w.name());
                }
            }
        };
        assert_eq!(result, expected, "{}: sliced run result", w.name());
        assert_same_state(&fast, &slow, w.name());
        assert_eq!(w.extract(&fast), w.extract(&slow), "{}", w.name());
    }
}

fn run_injected(
    w: &dyn Workload,
    plan: &FaultPlan,
    reference: bool,
    chunked: bool,
) -> (RunResult, u32, Option<Vec<u8>>) {
    let tags = analyze(w.program());
    let mut m = fresh_machine(w, false);
    let mut injector = Injector::new(w.program(), &tags, Protection::Off, plan.clone());
    let result = if reference {
        m.run_reference(&mut injector)
    } else if chunked {
        let mut target = 0u64;
        loop {
            target += 10_001;
            match m.run_until(&mut injector, target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => {}
            }
        }
    } else {
        m.run(&mut injector)
    };
    let output = (result.outcome == Outcome::Halted)
        .then(|| w.extract(&m))
        .flatten();
    (result, injector.injected(), output)
}

/// Under an injecting hook — bit flips landing on exact writeback indices —
/// the pipelines must stay bit-identical: same flips hit the same dynamic
/// writebacks, so outcome, icount, injected count, and output all match.
/// The decoded pipeline is additionally exercised with pause/resume to
/// prove injection sites are unaffected by bounded execution.
#[test]
fn injected_trials_agree_across_pipelines() {
    for w in all_workloads() {
        let tags = analyze(w.program());
        let golden = golden_run(&*w, &tags, Protection::Off, u64::MAX / 2);
        let mut rng = SmallRng::seed_from_u64(0xD1FF ^ golden.instructions);
        let plan = FaultPlan::sample(&mut rng, golden.eligible_population, 5);

        let (ref_result, ref_injected, ref_output) = run_injected(&*w, &plan, true, false);
        let (dec_result, dec_injected, dec_output) = run_injected(&*w, &plan, false, false);
        let (chk_result, chk_injected, chk_output) = run_injected(&*w, &plan, false, true);

        assert_eq!(dec_result, ref_result, "{}: injected result", w.name());
        assert_eq!(dec_injected, ref_injected, "{}: injected count", w.name());
        assert_eq!(dec_output, ref_output, "{}: injected output", w.name());
        assert_eq!(chk_result, ref_result, "{}: chunked result", w.name());
        assert_eq!(chk_injected, ref_injected, "{}: chunked count", w.name());
        assert_eq!(chk_output, ref_output, "{}: chunked output", w.name());
    }
}

/// Dirty-page restore vs full-image restore: a trial resumed from a
/// snapshot must not care which restore path refreshed the machine.
#[test]
fn dirty_page_and_full_image_restore_agree() {
    for w in all_workloads() {
        let mut m = fresh_machine(&*w, false);
        let probe = {
            let mut probe = fresh_machine(&*w, false);
            probe.run_simple().instructions
        };
        assert_eq!(m.run_until_simple(probe / 2), BoundedRun::Paused);
        let snap = m.snapshot();

        // Dirty path: finish the run (dirtying pages), then restore the
        // snapshot the machine is already based on.
        m.restore(&snap).unwrap(); // establishes the base (full copy)
        m.run_simple();
        m.restore(&snap).unwrap(); // dirty-page path
        let a = m.run_simple();
        let out_a = w.extract(&m);

        // Full path: an explicit whole-image restore on a fresh machine.
        let mut full = Machine::from_snapshot(
            w.program(),
            &snap,
            &machine_config(&*w, false),
        )
        .unwrap();
        full.restore_full(&snap).unwrap();
        let b = full.run_simple();
        let out_b = w.extract(&full);

        assert_eq!(a, b, "{}: restore-path result", w.name());
        assert_eq!(out_a, out_b, "{}: restore-path output", w.name());
        assert_same_state(&m, &full, w.name());
    }
}

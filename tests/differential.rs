//! Differential suite for the predecoded execution pipeline: for every
//! workload in the study, the micro-op dispatch ([`Machine::run`]) and the
//! reference `Instr` interpreter ([`Machine::run_reference`]) must produce
//! identical `Outcome`, output bytes, instruction counts, register files,
//! and `exec_counts` — including under `run_until` pause/resume, under an
//! injecting `WritebackHook`, and across dirty-page vs full-image restore.

use std::sync::Arc;

use certa::core::analyze;
use certa::fault::{golden_run, FaultPlan, Injector, Protection};
use certa::isa::{Program, Reg};
use certa::sim::{
    BoundedRun, DecodedProgram, Machine, MachineConfig, NoHook, Outcome, RunResult,
    SuperblockPolicy, WritebackHook,
};
use certa::workloads::all_workloads;
use certa::workloads::Workload;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

fn machine_config(w: &dyn Workload, profile: bool) -> MachineConfig {
    MachineConfig {
        mem_size: w.mem_size(),
        profile,
        ..MachineConfig::default()
    }
}

fn fresh_machine<'p>(w: &'p dyn Workload, profile: bool) -> Machine<'p> {
    let mut m = Machine::new(w.program(), &machine_config(w, profile));
    w.prepare(&mut m);
    m
}

fn assert_same_state(fast: &Machine<'_>, slow: &Machine<'_>, label: &str) {
    for i in 0..32u8 {
        assert_eq!(
            fast.reg(Reg::new(i)),
            slow.reg(Reg::new(i)),
            "{label}: register ${i} diverged"
        );
    }
    assert_eq!(
        fast.instructions(),
        slow.instructions(),
        "{label}: icount diverged"
    );
}

/// Golden (fault-free, profiled) runs must agree on everything the
/// campaign observes: result, per-instruction execution counts, registers,
/// and extracted output bytes.
#[test]
fn golden_runs_agree_across_pipelines() {
    for w in all_workloads() {
        let mut fast = fresh_machine(&*w, true);
        let mut slow = fresh_machine(&*w, true);
        let a = fast.run_simple();
        let b = slow.run_reference(&mut NoHook);
        assert_eq!(a, b, "{}: run result", w.name());
        assert_eq!(a.outcome, Outcome::Halted, "{}", w.name());
        assert_eq!(
            fast.exec_counts(),
            slow.exec_counts(),
            "{}: exec_counts",
            w.name()
        );
        assert_same_state(&fast, &slow, w.name());
        assert_eq!(
            w.extract(&fast),
            w.extract(&slow),
            "{}: output bytes",
            w.name()
        );
    }
}

/// Chopping a decoded run into uneven `run_until` slices must be invisible:
/// the final result equals the reference interpreter's straight run, and
/// every pause lands exactly on its target (fused pairs must split).
#[test]
fn bounded_decoded_runs_match_straight_reference_runs() {
    for w in all_workloads() {
        let mut slow = fresh_machine(&*w, false);
        let expected = slow.run_reference(&mut NoHook);

        let mut fast = fresh_machine(&*w, false);
        // Uneven, prime-ish slices to land pauses inside fused pairs.
        let slice = (expected.instructions / 7).max(1) | 1;
        let mut target = 0u64;
        let result = loop {
            target += slice;
            match fast.run_until_simple(target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => {
                    assert_eq!(fast.instructions(), target, "{}: pause point", w.name());
                }
            }
        };
        assert_eq!(result, expected, "{}: sliced run result", w.name());
        assert_same_state(&fast, &slow, w.name());
        assert_eq!(w.extract(&fast), w.extract(&slow), "{}", w.name());
    }
}

fn run_injected(
    w: &dyn Workload,
    plan: &FaultPlan,
    reference: bool,
    chunked: bool,
) -> (RunResult, u32, Option<Vec<u8>>) {
    let tags = analyze(w.program());
    let mut m = fresh_machine(w, false);
    let mut injector = Injector::new(w.program(), &tags, Protection::None, plan.clone());
    let result = if reference {
        m.run_reference(&mut injector)
    } else if chunked {
        let mut target = 0u64;
        loop {
            target += 10_001;
            match m.run_until(&mut injector, target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => {}
            }
        }
    } else {
        m.run(&mut injector)
    };
    let output = (result.outcome == Outcome::Halted)
        .then(|| w.extract(&m))
        .flatten();
    (result, injector.injected(), output)
}

/// Under an injecting hook — bit flips landing on exact writeback indices —
/// the pipelines must stay bit-identical: same flips hit the same dynamic
/// writebacks, so outcome, icount, injected count, and output all match.
/// The decoded pipeline is additionally exercised with pause/resume to
/// prove injection sites are unaffected by bounded execution.
#[test]
fn injected_trials_agree_across_pipelines() {
    for w in all_workloads() {
        let tags = analyze(w.program());
        let golden = golden_run(&*w, &tags, Protection::None, u64::MAX / 2);
        let mut rng = SmallRng::seed_from_u64(0xD1FF ^ golden.instructions);
        let plan = FaultPlan::sample(&mut rng, golden.eligible_population, 5);

        let (ref_result, ref_injected, ref_output) = run_injected(&*w, &plan, true, false);
        let (dec_result, dec_injected, dec_output) = run_injected(&*w, &plan, false, false);
        let (chk_result, chk_injected, chk_output) = run_injected(&*w, &plan, false, true);

        assert_eq!(dec_result, ref_result, "{}: injected result", w.name());
        assert_eq!(dec_injected, ref_injected, "{}: injected count", w.name());
        assert_eq!(dec_output, ref_output, "{}: injected output", w.name());
        assert_eq!(chk_result, ref_result, "{}: chunked result", w.name());
        assert_eq!(chk_injected, ref_injected, "{}: chunked count", w.name());
        assert_eq!(chk_output, ref_output, "{}: chunked output", w.name());
    }
}

// ---------------------------------------------------------------------
// Seeded random-program generator (hoisted to certa-aot::progs so the
// build-time tier-4 generator compiles byte-identical programs): loops,
// traced-through calls and jumps, guarded memory traffic, occasional
// wild accesses — the shapes the superblock builder linearizes. Every
// branch except the fixed-count loop closers is forward, so programs
// terminate (the watchdog backstops wild control flow anyway).
// ---------------------------------------------------------------------

use certa::aot::progs::{nested_loop_program, random_program, RANDOM_BUF_LEN as BUF_LEN};

/// A deterministic tampering hook: records every writeback and flips low
/// bits on a fixed cadence, so injected divergence (including into
/// addresses and branch inputs) stresses side exits identically per tier.
#[derive(Default)]
struct Recorder {
    events: Vec<(usize, u64)>,
    tamper: bool,
}

impl WritebackHook for Recorder {
    fn int_writeback(&mut self, i: usize, v: u32) -> u32 {
        self.events.push((i, u64::from(v)));
        if self.tamper && self.events.len().is_multiple_of(37) {
            v ^ 3
        } else {
            v
        }
    }
    fn float_writeback(&mut self, i: usize, v: f64) -> f64 {
        self.events.push((i, v.to_bits()));
        v
    }
}

/// Policy variants every seed is exercised under (superblock shapes from
/// degenerate 1-op traces to long call-threaded ones).
fn random_policy(rng: &mut SmallRng) -> SuperblockPolicy {
    SuperblockPolicy {
        min_len: rng.gen_range(1..4),
        max_len: rng.gen_range(4..80),
        ..SuperblockPolicy::default()
    }
}

struct TierRun {
    result: RunResult,
    events: Vec<(usize, u64)>,
    exec_counts: Vec<u64>,
    regs: Vec<u32>,
    mem: Vec<u8>,
    sb_instructions: u64,
}

fn run_tier(p: &Program, decoded: &Arc<DecodedProgram>, reference: bool, tamper: bool) -> TierRun {
    let config = MachineConfig {
        profile: true,
        max_instructions: 1 << 20,
        ..MachineConfig::default()
    };
    let mut m = Machine::try_new_with_decoded(p, decoded, &config).unwrap();
    let mut hook = Recorder {
        tamper,
        ..Recorder::default()
    };
    let result = if reference {
        m.run_reference(&mut hook)
    } else {
        m.run(&mut hook)
    };
    let buf_base = certa::asm::DATA_BASE;
    TierRun {
        result,
        events: hook.events,
        exec_counts: m.exec_counts().to_vec(),
        regs: (0..32).map(|i| m.reg(Reg::new(i))).collect(),
        mem: m.read_bytes(buf_base, BUF_LEN).unwrap(),
        sb_instructions: m.superblock_instructions(),
    }
}

fn assert_tiers_agree(seed: u64, a: &TierRun, b: &TierRun, label: &str) {
    assert_eq!(a.result, b.result, "seed {seed}: {label} result");
    assert_eq!(a.events, b.events, "seed {seed}: {label} hook sequence");
    assert_eq!(a.exec_counts, b.exec_counts, "seed {seed}: {label} counts");
    assert_eq!(a.regs, b.regs, "seed {seed}: {label} registers");
    assert_eq!(a.mem, b.mem, "seed {seed}: {label} memory");
}

/// The core random-program property: superblock ≡ fused ≡ reference on
/// outcome, hook sequences (plain and tampering), exec counts, registers,
/// and memory, across random superblock policies.
#[test]
fn random_programs_agree_across_all_three_tiers() {
    let mut covered = 0u64;
    for seed in 0..60u64 {
        let p = random_program(seed);
        let mut rng = SmallRng::seed_from_u64(!seed);
        let sb = Arc::new(DecodedProgram::with_policy(&p, &random_policy(&mut rng)));
        let fused = Arc::new(DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy::disabled(),
        ));
        for tamper in [false, true] {
            let r = run_tier(&p, &fused, true, tamper);
            let f = run_tier(&p, &fused, false, tamper);
            let s = run_tier(&p, &sb, false, tamper);
            assert_tiers_agree(seed, &f, &r, "fused-vs-reference");
            assert_tiers_agree(seed, &s, &r, "superblock-vs-reference");
            covered += s.sb_instructions;
            assert_eq!(f.sb_instructions, 0, "disabled policy must stay fused");
        }
    }
    assert!(
        covered > 10_000,
        "random programs must actually exercise the superblock tier ({covered})"
    );
}

/// Pause/resume at arbitrary boundaries — including mid-superblock — is
/// invisible: sliced bounded runs equal the straight reference run.
#[test]
fn random_programs_pause_and_resume_mid_superblock() {
    for seed in 0..20u64 {
        let p = random_program(seed);
        let config = MachineConfig {
            max_instructions: 1 << 20,
            ..MachineConfig::default()
        };
        let mut reference = Machine::new(&p, &config);
        let expected = reference.run_reference(&mut NoHook);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let mut m = Machine::new(&p, &config);
        let mut target = 0u64;
        let result = loop {
            target += rng.gen_range(1..23);
            match m.run_until_simple(target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => {
                    assert_eq!(m.instructions(), target, "seed {seed}: pause point");
                }
            }
        };
        assert_eq!(result, expected, "seed {seed}: sliced run");
        for i in 0..32u8 {
            assert_eq!(
                m.reg(Reg::new(i)),
                reference.reg(Reg::new(i)),
                "seed {seed}: register {i}"
            );
        }

        // Watchdog boundaries are exact across tiers too.
        if expected.instructions > 2 {
            let budget = expected.instructions / 2;
            for reference_tier in [false, true] {
                let mut m = Machine::new(
                    &p,
                    &MachineConfig {
                        max_instructions: budget,
                        ..MachineConfig::default()
                    },
                );
                let r = if reference_tier {
                    m.run_reference(&mut NoHook)
                } else {
                    m.run_simple()
                };
                assert_eq!(r.outcome, Outcome::InfiniteRun, "seed {seed}");
                assert_eq!(r.instructions, budget, "seed {seed}: watchdog point");
            }
        }
    }
}

/// Fault injection through the hook lands on identical dynamic writebacks
/// in every tier — flips at superblock boundaries and inside traces
/// produce the same outcome, icount, injected count, and memory.
#[test]
fn random_programs_agree_under_fault_injection() {
    for seed in 40..60u64 {
        let p = random_program(seed);
        let tags = analyze(&p);
        let config = MachineConfig {
            max_instructions: 1 << 20,
            ..MachineConfig::default()
        };
        // Population under Protection::None = every value-producing
        // writeback of the fault-free run.
        let mut probe = Machine::new(&p, &config);
        let base = probe.run_simple();
        if base.value_producing == 0 {
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37));
        let plan = FaultPlan::sample(&mut rng, base.value_producing, 4);

        let mut results = Vec::new();
        for tier in ["reference", "fused", "superblock"] {
            let decoded = match tier {
                "fused" => Arc::new(DecodedProgram::with_policy(
                    &p,
                    &SuperblockPolicy::disabled(),
                )),
                _ => Arc::new(DecodedProgram::new(&p)),
            };
            let mut m = Machine::try_new_with_decoded(&p, &decoded, &config).unwrap();
            let mut injector = Injector::new(&p, &tags, Protection::None, plan.clone());
            let result = if tier == "reference" {
                m.run_reference(&mut injector)
            } else {
                m.run(&mut injector)
            };
            let mem = m.read_bytes(certa::asm::DATA_BASE, BUF_LEN).unwrap();
            results.push((result, injector.injected(), mem));
        }
        assert_eq!(results[0], results[1], "seed {seed}: fused injection");
        assert_eq!(results[0], results[2], "seed {seed}: superblock injection");
    }
}

// ---------------------------------------------------------------------
// Taken-path loop linearization edges: the superblock builder now lays a
// loop-closing conditional branch's *backward* target next (unrolling
// iterations until the trace cap), so these shapes pin the equivalence
// across unrolled laps specifically.
// ---------------------------------------------------------------------


/// Nested loops with a traced call in the body: all three tiers agree on
/// every observable, and the superblock tier actually runs the trace.
#[test]
fn nested_loops_with_calls_agree_across_tiers() {
    let p = nested_loop_program();
    for policy in [
        SuperblockPolicy::default(),
        SuperblockPolicy {
            min_len: 1,
            max_len: 24, // cap lands mid-lap: exercises lap truncation
            ..SuperblockPolicy::default()
        },
    ] {
        let sb = Arc::new(DecodedProgram::with_policy(&p, &policy));
        let fused = Arc::new(DecodedProgram::with_policy(
            &p,
            &SuperblockPolicy::disabled(),
        ));
        for tamper in [false, true] {
            let r = run_tier(&p, &fused, true, tamper);
            let f = run_tier(&p, &fused, false, tamper);
            let s = run_tier(&p, &sb, false, tamper);
            assert_tiers_agree(7001, &f, &r, "nested fused-vs-reference");
            assert_tiers_agree(7001, &s, &r, "nested superblock-vs-reference");
            if !tamper {
                assert!(
                    s.sb_instructions > 0,
                    "nested-loop program must exercise the superblock tier"
                );
            }
        }
    }
}

/// Pause and watchdog boundaries landing mid-unrolled-iteration: slicing
/// a hot loop at every possible boundary is invisible, and the watchdog
/// fires at exactly its budget in every tier.
#[test]
fn pause_lands_mid_unrolled_iteration() {
    let p = nested_loop_program();
    let config = MachineConfig::default();
    let mut reference = Machine::new(&p, &config);
    let expected = reference.run_reference(&mut NoHook);

    // Every pause point (step 1): each boundary lands inside some
    // unrolled lap of the inner-loop trace.
    let mut m = Machine::new(&p, &config);
    for target in 1..expected.instructions {
        assert_eq!(m.run_until_simple(target), BoundedRun::Paused);
        assert_eq!(m.instructions(), target, "pause at {target}");
    }
    match m.run_until_simple(expected.instructions) {
        BoundedRun::Finished(r) => assert_eq!(r, expected),
        BoundedRun::Paused => panic!("final step must finish"),
    }
    for i in 0..32u8 {
        assert_eq!(m.reg(Reg::new(i)), reference.reg(Reg::new(i)));
    }

    // Watchdog at every budget below the natural end.
    for budget in (1..expected.instructions).step_by(7) {
        let cfg = MachineConfig {
            max_instructions: budget,
            ..MachineConfig::default()
        };
        let mut fast = Machine::new(&p, &cfg);
        let mut slow = Machine::new(&p, &cfg);
        let a = fast.run_simple();
        let b = slow.run_reference(&mut NoHook);
        assert_eq!(a, b, "watchdog budget {budget}");
        assert_eq!(a.outcome, Outcome::InfiniteRun);
        assert_eq!(a.instructions, budget);
    }
}

/// A tampering hook that corrupts the loop counter mid-trace: the flip
/// lands inside an unrolled lap, the loop-closing branch goes the "wrong"
/// way relative to the linearized path, and the side exit must carry all
/// three tiers to the identical (early or late) outcome.
#[test]
fn tampering_with_loop_counter_mid_trace_agrees() {
    struct CorruptCounter {
        countdown: u32,
        hits: u64,
    }
    impl WritebackHook for CorruptCounter {
        fn int_writeback(&mut self, _i: usize, v: u32) -> u32 {
            self.hits += 1;
            if self.hits == self.countdown as u64 {
                v ^ 0x7 // flip low bits of whatever retires here
            } else {
                v
            }
        }
    }
    let p = nested_loop_program();
    let config = MachineConfig {
        max_instructions: 1 << 16,
        ..MachineConfig::default()
    };
    let sb = Arc::new(DecodedProgram::new(&p));
    let fused = Arc::new(DecodedProgram::with_policy(
        &p,
        &SuperblockPolicy::disabled(),
    ));
    // Sweep the corruption over the first 60 writebacks: some land on the
    // inner counter (`addi t1, t1, -1`) inside an unrolled lap, flipping
    // the loop-closing branch against the trace's taken-path layout.
    for countdown in 1..60u32 {
        let mut results = Vec::new();
        for (decoded, reference) in [(&fused, true), (&fused, false), (&sb, false)] {
            let mut m = Machine::try_new_with_decoded(&p, decoded, &config).unwrap();
            let mut hook = CorruptCounter {
                countdown,
                hits: 0,
            };
            let r = if reference {
                m.run_reference(&mut hook)
            } else {
                m.run(&mut hook)
            };
            let regs: Vec<u32> = (0..32).map(|i| m.reg(Reg::new(i))).collect();
            results.push((r, hook.hits, regs));
        }
        assert_eq!(results[0], results[1], "countdown {countdown}: fused");
        assert_eq!(results[0], results[2], "countdown {countdown}: superblock");
    }
}

/// Dirty-page restore vs full-image restore: a trial resumed from a
/// snapshot must not care which restore path refreshed the machine.
#[test]
fn dirty_page_and_full_image_restore_agree() {
    for w in all_workloads() {
        let mut m = fresh_machine(&*w, false);
        let probe = {
            let mut probe = fresh_machine(&*w, false);
            probe.run_simple().instructions
        };
        assert_eq!(m.run_until_simple(probe / 2), BoundedRun::Paused);
        let snap = m.snapshot();

        // Dirty path: finish the run (dirtying pages), then restore the
        // snapshot the machine is already based on.
        m.restore(&snap).unwrap(); // establishes the base (full copy)
        m.run_simple();
        m.restore(&snap).unwrap(); // dirty-page path
        let a = m.run_simple();
        let out_a = w.extract(&m);

        // Full path: an explicit whole-image restore on a fresh machine.
        let mut full = Machine::from_snapshot(
            w.program(),
            &snap,
            &machine_config(&*w, false),
        )
        .unwrap();
        full.restore_full(&snap).unwrap();
        let b = full.run_simple();
        let out_b = w.extract(&full);

        assert_eq!(a, b, "{}: restore-path result", w.name());
        assert_eq!(out_a, out_b, "{}: restore-path output", w.name());
        assert_same_state(&m, &full, w.name());
    }
}

//! Differential containment suite: a campaign whose harness is
//! deliberately sabotaged — a panicking trial, a hung trial, and a trial
//! poisoned on every attempt — must contain each failure, retry per
//! policy, account for every attempt, and leave every *unaffected*
//! trial's result byte-identical to a campaign run without the sabotage.

use std::time::Duration;

use certa::core::analyze;
use certa::fault::{
    run_campaign, CampaignConfig, HarnessFailure, HarnessFaultInjection, Protection, Target,
    TrialStatus,
};
use certa::fidelity::verdict::{TrialVerdict, VerdictCounts};
use certa::workloads::{AdpcmWorkload, Workload};

fn config(harness_faults: HarnessFaultInjection) -> CampaignConfig {
    CampaignConfig {
        trials: 12,
        errors: 2,
        protection: Protection::ControlOnly,
        seed: 0xC07A1,
        // Single worker: a poisoned worker must not be able to hide
        // behind a healthy one, and the hang's wall-clock stall stays
        // bounded by one trial_timeout.
        threads: 1,
        trial_timeout: Duration::from_millis(200),
        harness_faults,
        ..CampaignConfig::default()
    }
}

#[test]
fn sabotaged_campaign_is_contained_retried_and_differentially_clean() {
    let w = AdpcmWorkload::new();
    let tags = analyze(w.program());

    let sabotage = HarnessFaultInjection {
        // Trial 2: first attempt panics, retry completes.
        // Trial 9: every attempt panics — retried out.
        panic_trials: vec![(2, 1), (9, 2)],
        // Trial 5: first attempt stalls past the deadline, retry completes.
        hang_trials: vec![(5, 1)],
    };
    // run_campaign itself asserts verify_reconciliation(); reaching the
    // assertions below means the books already balanced.
    let poisoned = run_campaign(&w, &tags, &config(sabotage));
    let clean = run_campaign(&w, &tags, &config(HarnessFaultInjection::default()));

    // The panicked and hung trials were contained and completed on retry.
    assert_eq!(poisoned.trials[2].retries, 1);
    assert!(poisoned.trials[2].result().is_some());
    assert_eq!(poisoned.trials[5].retries, 1);
    assert!(poisoned.trials[5].result().is_some());

    // The always-poisoned trial was retried out per policy — reported as
    // a harness error, never silently dropped.
    assert_eq!(
        poisoned.trials[9].status,
        TrialStatus::HarnessError(HarnessFailure::Panic)
    );
    assert_eq!(poisoned.trials[9].retries, 1);
    assert_eq!(poisoned.outcome_counts().harness_error, 1);
    assert_eq!(poisoned.outcome_counts().total(), 12);

    // Every failed attempt is accounted: 3 panics + 1 timeout = 3 retries
    // + 1 retried-out trial, and each failure rebuilt the worker machine.
    let stats = poisoned.harness_stats;
    assert_eq!(stats.panics, 3);
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.retries, 3);
    assert_eq!(stats.rebuilds, 4);
    assert_eq!(stats.harness_errors, 1);
    poisoned.verify_reconciliation().expect("books must balance");

    // Differential check: sabotage must not leak into any other trial.
    // Retried trials run from rebuilt machine state, so their results —
    // and every untouched trial's — are byte-identical to the clean run.
    let clean_stats = clean.harness_stats;
    assert_eq!(clean_stats, Default::default());
    for (i, (a, b)) in poisoned.trials.iter().zip(&clean.trials).enumerate() {
        if i == 9 {
            continue; // retried out under sabotage, completed when clean
        }
        assert_eq!(
            a.result(),
            b.result(),
            "trial {i}: sabotage elsewhere must not change this result"
        );
    }
    assert!(clean.trials[9].result().is_some());

    // Verdict classification keeps the harness bucket separate: the
    // retried-out trial classifies as HarnessError, and the remaining
    // verdicts match the clean campaign's exactly.
    let mut poisoned_counts = VerdictCounts::default();
    let mut clean_counts = VerdictCounts::default();
    for (i, (a, b)) in poisoned.trials.iter().zip(&clean.trials).enumerate() {
        let va = w.classify_trial(&a.status, &poisoned.golden.output);
        let vb = w.classify_trial(&b.status, &clean.golden.output);
        if i == 9 {
            assert_eq!(va, TrialVerdict::HarnessError);
        } else {
            assert_eq!(va, vb, "trial {i} verdict");
        }
        poisoned_counts.record(&va);
        clean_counts.record(&vb);
    }
    assert_eq!(poisoned_counts.harness_error, 1);
    assert_eq!(clean_counts.harness_error, 0);
    assert_eq!(poisoned_counts.total(), clean_counts.total());
}
